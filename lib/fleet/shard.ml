module Job = Sofia_service.Job

(* FNV-1a 64 over the routing key. The same fingerprint family the
   stores use ("filenames route, envelopes decide" — DESIGN §12): cheap,
   deterministic, stateless, so the shard map needs no coordination and
   survives router restarts unchanged. *)
let fnv64_offset = 0xcbf29ce484222325L
let fnv64_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv64_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv64_prime)
    s;
  !h

(* The routing key is the image content tuple — (source, key seed,
   ω/nonce, backend) — NOT the op: a protect, verify, attest and
   simulate of the same program land on the same shard, so exactly one
   child's content-addressed store (memory and disk tier alike) ever
   builds that image. Run_image routes by path; Ping is shardless. The
   backend component is appended only when it is not SOFIA, so every
   pre-PR-8 key (and therefore the shard map of an all-SOFIA fleet) is
   byte-identical to before backends existed. *)
let route_key (req : Job.request) =
  let body =
    match req.Job.spec with
    | Job.Protect { source } | Job.Verify { source } | Job.Attest { source }
    | Job.Simulate { source; _ } ->
      source
    | Job.Run_image { path } -> path
    | Job.Ping -> ""
  in
  let backend =
    match req.Job.backend with
    | Sofia_transform.Backend_id.Sofia -> ""
    | b -> "|" ^ Sofia_transform.Backend_id.name b
  in
  Printf.sprintf "%s|%Lx|%d%s" body req.Job.key_seed req.Job.nonce backend

let route ~shards (req : Job.request) =
  if shards <= 1 then 0
  else
    Int64.to_int
      (Int64.rem
         (Int64.logand (fnv64 (route_key req)) 0x7FFFFFFFFFFFFFFFL)
         (Int64.of_int shards))

(* Replay-cache key: everything that determines the payload. The op (and
   the simulate target core) joins the content triple; scheduling fields
   (id, deadline) deliberately do not. *)
let content_key (req : Job.request) =
  let tag =
    match req.Job.spec with
    | Job.Simulate { sofia; _ } -> if sofia then "#sofia" else "#vanilla"
    | _ -> ""
  in
  Job.op_name req.Job.spec ^ tag ^ "|" ^ route_key req

(* Protect/verify/attest/simulate are deterministic functions of the
   content key (the whole system is: same source, same keys, same ω ⇒
   bit-identical image, verdicts and run). Run_image reads a file that
   can change under us, and Ping is a liveness probe — never replayed. *)
let replayable (req : Job.request) =
  match req.Job.spec with
  | Job.Protect _ | Job.Verify _ | Job.Attest _ | Job.Simulate _ -> true
  | Job.Run_image _ | Job.Ping -> false
