(** Fleet child mechanics: spawning a real [sofia_cli serve --socket
    PATH --once] process and talking to it over one persistent
    Unix-socket connection with buffered NDJSON line I/O.

    Policy (windows, redispatch, breaker, quarantine) lives in
    {!Router}; this module only knows how to start, feed, read, reap
    and kill one child. *)

type proc = {
  shard : int;
  socket_path : string;
  mutable pid : int;  (** [-1] when not running *)
  mutable fd : Unix.file_descr option;
  rbuf : Buffer.t;
}

exception Child_failed of string
(** A child exited before binding its socket, or never bound it within
    the connect timeout. *)

val find_cli : unit -> string option
(** Locate the [sofia_cli] binary: [$SOFIA_CLI], the running executable
    itself (when it {e is} sofia_cli), or the usual spots in the same
    [_build] tree. *)

val spawn : cli:string -> args:string list -> int
(** Fork+exec; stdin/stdout on [/dev/null], stderr inherited. Returns
    the pid. *)

val start :
  cli:string ->
  args:string list ->
  shard:int ->
  socket_path:string ->
  connect_timeout_s:float ->
  proc
(** {!spawn} then poll-connect to [socket_path] until the child binds.
    @raise Child_failed on exit-before-bind or timeout. *)

val restart : proc -> cli:string -> args:string list -> connect_timeout_s:float -> unit
(** Fresh process on the same socket path (the serve side handles the
    stale socket file); resets the line buffer. *)

val send_line : proc -> string -> bool
(** Blocking full write of one line; [false] = connection dead. *)

val drain_input : proc -> [ `Lines of string list | `Eof ]
(** Read what select said is there; complete lines only (a partial
    line waits in [rbuf] for the next readable event). *)

val alive : int -> bool
val signal : proc -> int -> unit
val close_fd : proc -> unit

val reap : proc -> timeout_s:float -> bool
val kill : proc -> unit
(** SIGKILL + reap — the supervision move OCaml domains never allowed. *)

val stop_gently : proc -> timeout_s:float -> unit
(** Close our end (a [--once] child drains and exits at EOF), escalate
    to {!kill} if it does not exit in time. *)
