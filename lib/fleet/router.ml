(* The fleet router: N `sofia_cli serve --socket --once` children behind
   one single-threaded select loop that shards jobs by image content
   hash (Shard.route), with PR 4's supervision machinery promoted one
   level up — watchdog, crash-restart with exponential backoff and a
   restart-budget window, circuit breaker and graceful drain now act on
   whole processes, which (unlike OCaml domains) can actually be
   killed. The loop serves any number of concurrent clients (pipes,
   AF_UNIX or TCP accepts) with per-client read/write buffers, so one
   stalled reader never blocks the fleet.

   Trust model (DESIGN §13/§15): children are untrusted-but-supervised.
   The router never constructs a payload itself — every byte of a
   client-visible payload was produced by a child behind the full
   MAC-before-anything-runnable pipeline — but it does hold children to
   account: deterministic ops are content-keyed, duplicate answers are
   replayed from a router-side cache (so one shard's lie cannot fan
   out past its first victim), and a configurable audit sample
   re-dispatches jobs to a second shard and compares response content
   hashes, with a third-shard majority vote deciding which child lied.

   Quarantine has a two-cause taxonomy. A child caught lying about a
   content hash is quarantined for INTEGRITY: killed, never restarted,
   its traffic re-shed to healthy shards. A child quarantined by the
   BREAKER (repeated deaths, exhausted restart budget) is merely
   suspected of a bad environment: after a cooldown it is restarted on
   probation and must answer K consecutive clean probes before it is
   re-admitted and its traffic dynamically re-shed back home.

   The replay cache can persist across router restarts through the §12
   store_fs envelope tier (config.replay_dir): each settled done
   response is sealed as a Replay envelope under the request's own
   keys, and a reload is zero-trust — envelope structure, CRC, CBC-MAC,
   source compare, and a re-derived payload fingerprint must all pass
   before a byte of it is ever replayed to a client. *)

module Job = Sofia_service.Job
module J = Sofia_obs.Json
module Obs = Sofia_obs.Obs
module Event = Sofia_obs.Event
module Clock = Sofia_util.Clock
module Fs = Sofia_store_fs.Store_fs
module Keys = Sofia_crypto.Keys

type event =
  | Client_response of int  (** running count of client-visible job responses *)
  | Child_up of int * int  (** shard, pid *)
  | Child_down of int * string  (** shard, reason *)
  | Child_rejoin of int * int  (** shard, ss_routed at re-admission *)

type config = {
  children : int;
  workers : int;
  queue : int;
  cli : string option;
  socket_dir : string option;
  store_dir : string option;
  store_budget : int;
  engine : string option;
  backend : Sofia_transform.Backend_id.t;
  default_deadline_ms : int option;
  window : int;
  replay : bool;
  audit_every : int;
  probe_interval_ms : int;
  hang_timeout_ms : int;
  breaker_threshold : int;
  redispatch_limit : int;
  connect_timeout_s : float;
  child_extra_args : (int -> string list) option;
  on_event : (event -> unit) option;
  replay_dir : string option;
  rejoin_cooldown_ms : int;
  rejoin_probes : int;
  restart_backoff_ms : int;
  restart_backoff_max_ms : int;
  restart_budget : int;
  restart_budget_window_ms : int;
  client_linger_ms : int;
}

let default_config =
  {
    children = 3;
    workers = 1;
    queue = 64;
    cli = None;
    socket_dir = None;
    store_dir = None;
    store_budget = 0;
    engine = None;
    backend = Sofia_transform.Backend_id.Sofia;
    default_deadline_ms = None;
    window = 32;
    replay = true;
    audit_every = 16;
    probe_interval_ms = 250;
    hang_timeout_ms = 5_000;
    breaker_threshold = 3;
    redispatch_limit = 2;
    connect_timeout_s = 10.0;
    child_extra_args = None;
    on_event = None;
    replay_dir = None;
    rejoin_cooldown_ms = 30_000;
    rejoin_probes = 3;
    restart_backoff_ms = 25;
    restart_backoff_max_ms = 2_000;
    restart_budget = 6;
    restart_budget_window_ms = 10_000;
    client_linger_ms = 5_000;
  }

type shard_stats = {
  ss_shard : int;
  mutable ss_routed : int;  (* primary dispatches sent to this shard *)
  mutable ss_done : int;  (* client-visible done responses it served *)
  mutable ss_deaths : int;
  mutable ss_restarts : int;
  mutable ss_hangs : int;
  mutable ss_quarantined : bool;
  mutable ss_lat_ms : float list;  (* router-observed, newest first *)
}

type stats = {
  mutable received : int;
  mutable malformed : int;
  mutable submitted : int;
  mutable done_ : int;
  mutable rejected : int;
  mutable timed_out : int;
  mutable failed : int;
  mutable replays : int;
  mutable coalesced : int;
  mutable audits : int;
  mutable digest_conflicts : int;
  mutable deaths : int;
  mutable restarts : int;
  mutable hangs : int;
  mutable quarantines : int;
  mutable resheds : int;
  mutable interrupted : bool;
  mutable backoffs : int;  (* deferred restarts scheduled *)
  mutable rejoins : int;  (* quarantined shards re-admitted after probation *)
  mutable quar_breaker : int;
  mutable quar_integrity : int;
  mutable disk_replays : int;  (* replays served from the persistent tier *)
  mutable slow_client_drops : int;
  shards : shard_stats array;
}

let conserved s = s.submitted = s.done_ + s.rejected + s.timed_out + s.failed

type kind =
  | Primary
  | Audit of string  (* internal id of the audited primary *)
  | Tiebreak of string
  | Probe

(* One connected client: its own NDJSON reassembly buffer on the read
   side and an elastic write buffer on the write side, so a reader that
   has stalled (full socket buffer) only delays its own responses — the
   select loop keeps pumping every other client and every child. A
   client whose buffer stays undrained past the linger is dropped; its
   jobs keep settling internally so the terminal counters conserve. *)
type client = {
  cl_id : int;
  cl_in : Unix.file_descr;
  cl_out : Unix.file_descr;
  cl_rbuf : Buffer.t;
  cl_wbuf : Buffer.t;
  mutable cl_eof : bool;
  mutable cl_gone : bool;
  mutable cl_pending : int;  (* admitted, not yet answered *)
  mutable cl_drain_deadline : float;  (* 0.0 = buffer empty / no deadline *)
  cl_owned : bool;  (* accepted by us: we close the fds *)
}

(* Why a shard is out of service. Breaker quarantines are eligible for
   probation rejoin; integrity quarantines are permanent — a child that
   lied about a content hash is never trusted again. *)
type quarantine_cause = Breaker | Integrity

type dispatch = {
  d_iid : string;  (* internal wire id — the router renames jobs on the child hop *)
  d_req : Job.request;  (* original request, client id inside *)
  d_key : string;  (* content key; "" when not replayable *)
  d_seq : int;
  d_admit : float;  (* mono *)
  d_kind : kind;
  d_client : client;  (* who gets the answer; the sink for router-internal work *)
  mutable d_tries : int;  (* child incarnations consumed *)
  mutable d_shard : int;
}

(* A duplicate of an in-flight content key, parked until the primary
   settles. *)
type waiter = { w_id : string; w_seq : int; w_admit : float; w_client : client }

(* One audited primary: both responses stashed until the verdict. *)
type audit_state = {
  a_primary : dispatch;
  mutable a_p_fields : (string * J.t) list option;  (* rewritten, unemitted *)
  mutable a_p_fp : string option;
  mutable a_a_shard : int;
  mutable a_a_fp : string option;
  mutable a_t_shard : int;  (* tiebreak shard, -1 until needed *)
  mutable a_abandoned : bool;  (* the audit died with its child *)
}

(* A settled done-response, pre-rendered for replay: the payload tail
   (the expensive part — it carries the image summary) is serialized
   once at fill time, and each replay only renders the nine small
   metadata scalars. Byte-compatible with Job.response_to_line's field
   order. *)
type cached = {
  t_op : string;
  t_status : string;
  t_worker : int;  (* origin shard, surfaced on every replay *)
  t_ts : J.t;  (* origin ts_unix, replays keep it (provenance, not schedule) *)
  t_tail : string;  (* ",\"k\":v,..." — payload fields, rendered; "" if none *)
}

type child_state = {
  c : Child.proc;
  cs : shard_stats;
  mutable c_outstanding : (string, dispatch) Hashtbl.t;
  c_queue : dispatch Queue.t;
  mutable c_last_rx : float;
  mutable c_consec_deaths : int;
  mutable c_probe_out : bool;
  mutable c_args : string list;
  mutable c_quar : quarantine_cause option;
  mutable c_quar_since : float;
  mutable c_probation : int;  (* clean probes so far; -1 = not on probation *)
  mutable c_restart_at : float;  (* deferred restart due time; 0.0 = none *)
  mutable c_restart_times : float list;  (* restart budget window, newest first *)
}

type t = {
  cfg : config;
  cli : string;
  dir : string;
  dir_created : bool;
  stats : stats;
  obs : Obs.t;
  kids : child_state array;
  cache : (string, cached) Hashtbl.t;  (* content key -> rendered template *)
  memo : (string, string) Hashtbl.t;  (* raw request tail -> content key *)
  waiters : (string, waiter list ref) Hashtbl.t;  (* key -> parked duplicates *)
  audits : (string, audit_state) Hashtbl.t;  (* primary iid -> state *)
  mutable next_seq : int;
  mutable next_iid : int;
  mutable completion : int;
  mutable distinct_keys : int;  (* drives the audit sampling cadence *)
  mutable settled : int;  (* client-visible job responses emitted *)
  mutable stop : bool;
  mutable clients : client list;
  mutable next_client : int;
  sink : client;  (* never-written destination for router-internal dispatches *)
  mutable listen : Unix.file_descr option;
  mutable accepts_left : int;  (* 0 = no more accepts; < 0 = unlimited *)
  mutable rng : int64;  (* deterministic jitter state *)
  rstore : Fs.t option;  (* persistent replay tier, when configured *)
  rkeys : (int64, Keys.t) Hashtbl.t;  (* key_seed -> derived device keys *)
}

let fire t e = match t.cfg.on_event with Some f -> f e | None -> ()

let emit_obs t kind detail =
  if Obs.tracing t.obs then Obs.emit t.obs (Event.Service_error { kind; detail })

(* Bounded deterministic jitter (an LCG stepped per draw): restart
   storms across shards de-synchronize without consulting any global
   randomness the tests could not replay. *)
let jitter t bound =
  t.rng <- Int64.add (Int64.mul t.rng 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.rem (Int64.shift_right_logical t.rng 33) (Int64.of_int (max 1 bound)))

(* ---- client output ------------------------------------------------ *)

(* Push as much buffered output as the client will take right now.
   Blocking fds (the legacy pipe front) drain fully — our NDJSON can
   tear only if the client never reads it; nonblocking fds (accepted
   sockets, fault-scenario pipes) keep the remainder buffered for the
   select loop's write set. A vanished client flips [cl_gone]; jobs
   keep settling internally so the terminal counters still conserve. *)
let flush_client cl =
  if (not cl.cl_gone) && Buffer.length cl.cl_wbuf > 0 then begin
    let s = Buffer.contents cl.cl_wbuf in
    let len = String.length s in
    let data = Bytes.unsafe_of_string s in
    let rec push off =
      if off >= len then begin
        Buffer.clear cl.cl_wbuf;
        cl.cl_drain_deadline <- 0.0
      end
      else
        match Unix.write cl.cl_out data off (len - off) with
        | n -> push (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Buffer.clear cl.cl_wbuf;
          Buffer.add_substring cl.cl_wbuf s off (len - off)
    in
    try push 0
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      Buffer.clear cl.cl_wbuf;
      cl.cl_gone <- true
  end

let write_client cl line =
  if not cl.cl_gone then begin
    Buffer.add_string cl.cl_wbuf line;
    Buffer.add_char cl.cl_wbuf '\n';
    flush_client cl
  end

(* Every admitted request is answered exactly once; [deliver] is the
   single place that retires the admission debt. *)
let deliver cl line =
  cl.cl_pending <- cl.cl_pending - 1;
  write_client cl line

(* ---- response JSON plumbing --------------------------------------- *)

let volatile_fields = [ "id"; "seq"; "completion"; "attempts"; "worker"; "latency_ms"; "ts_unix" ]

(* The content fingerprint of a response: every field except scheduling
   metadata and the store-provenance bit. Two honest children answering
   the same content key MUST agree on this (determinism end to end);
   this is what the audit vote compares. *)
let payload_fp fields =
  let keep (k, _) = not (List.mem k volatile_fields || k = "cached") in
  J.to_string (J.Obj (List.filter keep fields))

let set_field fields k v =
  if List.mem_assoc k fields then
    List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields
  else fields @ [ (k, v) ]

let get_str fields k =
  match List.assoc_opt k fields with Some (J.Str s) -> Some s | _ -> None

let count_status t ss status latency_ms =
  (match status with
   | "done" ->
     t.stats.done_ <- t.stats.done_ + 1;
     (match ss with Some s -> s.ss_done <- s.ss_done + 1 | None -> ())
   | "rejected" -> t.stats.rejected <- t.stats.rejected + 1
   | "timed_out" -> t.stats.timed_out <- t.stats.timed_out + 1
   | _ -> t.stats.failed <- t.stats.failed + 1);
  (match ss with Some s -> s.ss_lat_ms <- latency_ms :: s.ss_lat_ms | None -> ());
  t.settled <- t.settled + 1;
  fire t (Client_response t.settled)

(* Emit one client-visible response from template fields, rewriting the
   per-request metadata. [shard_stats] attributes done-counts/latency to
   the serving shard (None for router-origin verdicts and replays). *)
let emit_from_fields t cl ~id ~seq ~admit ~attempts ~worker ~shard_stats fields =
  let lat = (Clock.mono_s () -. admit) *. 1000.0 in
  let fields =
    set_field
      (set_field
         (set_field
            (set_field
               (set_field (set_field fields "id" (J.Str id)) "seq" (J.Int seq))
               "completion" (J.Int t.completion))
            "attempts" (J.Int attempts))
         "worker" (J.Int worker))
      "latency_ms" (J.Float lat)
  in
  t.completion <- t.completion + 1;
  let status = Option.value ~default:"failed" (get_str fields "status") in
  count_status t shard_stats status lat;
  deliver cl (J.to_string (J.Obj fields))

let metadata_fields =
  [ "id"; "op"; "status"; "seq"; "completion"; "attempts"; "worker"; "latency_ms"; "ts_unix" ]

let make_cached ~worker fields =
  let payload = List.filter (fun (k, _) -> not (List.mem k metadata_fields)) fields in
  let tail =
    match payload with
    | [] -> ""
    | _ ->
      let s = J.to_string (J.Obj payload) in
      "," ^ String.sub s 1 (String.length s - 2)
  in
  {
    t_op = Option.value ~default:"?" (get_str fields "op");
    t_status = Option.value ~default:"done" (get_str fields "status");
    t_worker = worker;
    t_ts = Option.value ~default:(J.Float 0.0) (List.assoc_opt "ts_unix" fields);
    t_tail = tail;
  }

(* The replay fast path: serialize only the metadata head and splice the
   pre-rendered payload tail — a duplicate costs microseconds, which is
   where the fleet's throughput edge over a single-process serve comes
   from on duplicate-heavy mixes. *)
let emit_replay t cl ~id ~seq ~admit (c : cached) =
  let lat = (Clock.mono_s () -. admit) *. 1000.0 in
  let head =
    J.to_string
      (J.Obj
         [ ("id", J.Str id); ("op", J.Str c.t_op); ("status", J.Str c.t_status);
           ("seq", J.Int seq); ("completion", J.Int t.completion); ("attempts", J.Int 0);
           ("worker", J.Int c.t_worker); ("latency_ms", J.Float lat); ("ts_unix", c.t_ts) ])
  in
  t.completion <- t.completion + 1;
  t.stats.replays <- t.stats.replays + 1;
  count_status t None c.t_status lat;
  deliver cl (String.sub head 0 (String.length head - 1) ^ c.t_tail ^ "}")

(* A verdict the router itself must hand down (no healthy shard, a job
   that kills every child it touches, an unresolved integrity conflict).
   Honest failure, standard wire schema. *)
let emit_router_failure t cl ~id ~op ~seq ~admit msg =
  let resp =
    {
      Job.id;
      op;
      seq;
      completion = t.completion;
      attempts = 0;
      worker = -1;
      latency_ms = (Clock.mono_s () -. admit) *. 1000.0;
      ts = Clock.wall_s ();
      status = Job.Failed msg;
    }
  in
  t.completion <- t.completion + 1;
  count_status t None "failed" resp.Job.latency_ms;
  deliver cl (Job.response_to_line resp)

(* ---- the persistent replay tier ----------------------------------- *)

(* A Replay envelope is sealed under the request's own derived device
   keys: the payload is the cached template rendered as one JSON
   object, and the envelope source is the router's content key — so a
   reload re-checks kind, codec, nonce, key fingerprint, CRC, CBC-MAC
   and the full source text, and store_fs additionally re-derives the
   payload's 64-bit fingerprint (store_replay meta) before a byte is
   believed. A failed check is a miss, never served. *)

let replay_keys t seed =
  match Hashtbl.find_opt t.rkeys seed with
  | Some k -> k
  | None ->
    let k = Keys.generate ~seed in
    Hashtbl.add t.rkeys seed k;
    k

let cached_payload (c : cached) =
  Bytes.of_string
    (J.to_string
       (J.Obj
          [ ("op", J.Str c.t_op); ("status", J.Str c.t_status);
            ("worker", J.Int c.t_worker); ("ts", c.t_ts); ("tail", J.Str c.t_tail) ]))

let cached_of_payload payload =
  match J.parse_opt (Bytes.to_string payload) with
  | Some (J.Obj fields) -> (
    match
      ( get_str fields "op", get_str fields "status",
        List.assoc_opt "worker" fields, List.assoc_opt "ts" fields,
        get_str fields "tail" )
    with
    | Some op, Some status, Some (J.Int worker), Some ts, Some tail ->
      Some { t_op = op; t_status = status; t_worker = worker; t_ts = ts; t_tail = tail }
    | _ -> None)
  | _ -> None

let disk_replay_store t (req : Job.request) key c =
  match t.rstore with
  | Some rs when t.cfg.replay && key <> "" ->
    Fs.store_replay rs ~backend:req.Job.backend ~keys:(replay_keys t req.Job.key_seed)
      ~nonce:req.Job.nonce ~source:key ~payload:(cached_payload c)
  | _ -> ()

let disk_replay_load t (req : Job.request) key =
  match t.rstore with
  | Some rs when t.cfg.replay && key <> "" ->
    Option.bind
      (Fs.load_replay rs ~backend:req.Job.backend ~keys:(replay_keys t req.Job.key_seed)
         ~nonce:req.Job.nonce ~source:key)
      cached_of_payload
  | _ -> None

(* ---- shard selection ---------------------------------------------- *)

let healthy t k = not t.kids.(k).cs.ss_quarantined

let healthy_count t =
  Array.fold_left (fun n k -> if k.cs.ss_quarantined then n else n + 1) 0 t.kids

(* Content-hash routing with quarantine fallback: a quarantined home
   shard re-sheds deterministically to the next healthy one (scanning
   up), so even degraded routing stays a pure function of (request,
   quarantine set). A rejoined shard becomes healthy again, so its
   traffic re-sheds back home through this same function. *)
let effective_shard t req =
  let n = Array.length t.kids in
  let s0 = Shard.route ~shards:n req in
  if healthy t s0 then Some s0
  else begin
    let rec scan i = if i = n then None
      else if healthy t ((s0 + i) mod n) then Some ((s0 + i) mod n)
      else scan (i + 1)
    in
    match scan 1 with
    | Some s ->
      t.stats.resheds <- t.stats.resheds + 1;
      Some s
    | None -> None
  end

let next_healthy_excluding t ~avoid =
  let n = Array.length t.kids in
  let rec scan i =
    if i = n then None
    else if (not (List.mem i avoid)) && healthy t i then Some i
    else scan (i + 1)
  in
  scan 0

(* ---- child spawn / args ------------------------------------------- *)

let child_args t k =
  let sock = Filename.concat t.dir (Printf.sprintf "shard-%d.sock" k) in
  let base =
    [
      "serve"; "--socket"; sock; "--once"; "--shard"; string_of_int k;
      "--workers"; string_of_int t.cfg.workers;
      "--queue"; string_of_int t.cfg.queue;
      "--json"; Filename.concat t.dir (Printf.sprintf "metrics-%d.json" k);
    ]
  in
  let engine = match t.cfg.engine with Some e -> [ "--engine"; e ] | None -> [] in
  (* passed only when non-default, so an all-SOFIA fleet spawns its
     children with the exact pre-backend command line *)
  let backend =
    match t.cfg.backend with
    | Sofia_transform.Backend_id.Sofia -> []
    | b -> [ "--backend"; Sofia_transform.Backend_id.name b ]
  in
  let store =
    match t.cfg.store_dir with
    | Some d ->
      [ "--store-dir"; Filename.concat d (Printf.sprintf "shard-%d" k) ]
      @ (if t.cfg.store_budget > 0 then [ "--store-budget"; string_of_int t.cfg.store_budget ]
         else [])
    | None -> []
  in
  let deadline =
    match t.cfg.default_deadline_ms with
    | Some d -> [ "--deadline-ms"; string_of_int d ]
    | None -> []
  in
  let extra = match t.cfg.child_extra_args with Some f -> f k | None -> [] in
  (sock, base @ engine @ backend @ store @ deadline @ extra)

(* ---- dispatch plumbing -------------------------------------------- *)

let request_line d =
  J.to_string (Job.request_to_json { d.d_req with Job.id = d.d_iid })

let rec pump t k =
  let ch = t.kids.(k) in
  if
    (not ch.cs.ss_quarantined)
    && ch.c.Child.fd <> None
    && Hashtbl.length ch.c_outstanding < t.cfg.window
    && not (Queue.is_empty ch.c_queue)
  then begin
    let d = Queue.pop ch.c_queue in
    d.d_shard <- k;
    Hashtbl.replace ch.c_outstanding d.d_iid d;
    (match d.d_kind with
     | Primary ->
       ch.cs.ss_routed <- ch.cs.ss_routed + 1
     | _ -> ());
    if Child.send_line ch.c (request_line d) then pump t k
    else handle_death t k "write failed"
  end

and enqueue t k d =
  Queue.push d t.kids.(k).c_queue;
  pump t k

(* ---- supervision: death, hang, breaker, quarantine ---------------- *)

(* A child died (EOF, failed write, or the watchdog killed it). Its
   in-flight and queued work is accounted for exactly once: primaries
   are re-dispatched to the replacement (or re-shed / failed once their
   incarnation budget is gone), audits are abandoned in the primary's
   favour, probes evaporate. Mirrors PR 4's worker-crash rule — record
   the death and schedule the replacement BEFORE settling the victims —
   at process scope. The replacement is deferred: exponential backoff
   with jitter, bounded by a restart budget over a sliding window, so a
   poison environment produces a paced, bounded restart storm rather
   than a hot loop. *)
and handle_death t k reason =
  let ch = t.kids.(k) in
  if ch.c.Child.fd <> None || Child.alive ch.c.Child.pid then begin
    if ch.cs.ss_quarantined then begin
      (* a probation incarnation died: the shard is already out of
         service and owes no client anything beyond probes — back to
         cooldown, no death accounting *)
      Hashtbl.reset ch.c_outstanding;
      Queue.clear ch.c_queue;
      ch.c_probe_out <- false;
      Child.kill ch.c;
      ch.c_probation <- -1;
      ch.c_quar_since <- Clock.mono_s ();
      emit_obs t "fleet_probation_death" (Printf.sprintf "shard %d: %s" k reason)
    end
    else begin
      let orphans = Hashtbl.fold (fun _ d acc -> d :: acc) ch.c_outstanding [] in
      let parked = List.of_seq (Queue.to_seq ch.c_queue) in
      Hashtbl.reset ch.c_outstanding;
      Queue.clear ch.c_queue;
      ch.c_probe_out <- false;
      Child.kill ch.c;
      t.stats.deaths <- t.stats.deaths + 1;
      ch.cs.ss_deaths <- ch.cs.ss_deaths + 1;
      ch.c_consec_deaths <- ch.c_consec_deaths + 1;
      emit_obs t "fleet_child_death"
        (Printf.sprintf "shard %d: %s (consecutive %d)" k reason ch.c_consec_deaths);
      fire t (Child_down (k, reason));
      let tripped =
        t.cfg.breaker_threshold > 0 && ch.c_consec_deaths >= t.cfg.breaker_threshold
      in
      if tripped then quarantine t k ~cause:Breaker "breaker: repeated child deaths"
      else begin
        let now = Clock.mono_s () in
        let window_s = float_of_int t.cfg.restart_budget_window_ms /. 1000.0 in
        ch.c_restart_times <-
          List.filter (fun ts -> now -. ts <= window_s) ch.c_restart_times;
        if
          t.cfg.restart_budget > 0
          && List.length ch.c_restart_times >= t.cfg.restart_budget
        then quarantine t k ~cause:Breaker "restart budget exhausted"
        else begin
          (* schedule the replacement: 2^(deaths-1) * base, capped, plus
             up to 25% deterministic jitter *)
          let expo =
            min t.cfg.restart_backoff_max_ms
              (max 1 t.cfg.restart_backoff_ms
               * (1 lsl min 16 (max 0 (ch.c_consec_deaths - 1))))
          in
          let delay_ms = expo + jitter t ((expo / 4) + 1) in
          ch.c_restart_at <- now +. (float_of_int delay_ms /. 1000.0);
          t.stats.backoffs <- t.stats.backoffs + 1;
          emit_obs t "fleet_restart_backoff"
            (Printf.sprintf "shard %d: restart in %dms (death %d)" k delay_ms
               ch.c_consec_deaths)
        end
      end;
      (* settle the orphans only after the supervision state is updated;
         orphans first so a killer job re-dispatches ahead of parked work
         (keeping its deaths consecutive for the breaker), and only
         orphans consume an incarnation try — a parked job never touched
         the dead child. Work re-routed to this same (still healthy)
         shard parks in its queue until the deferred restart pumps it. *)
      List.iter (redispatch t ~dispatched:true) (List.rev orphans);
      List.iter (redispatch t ~dispatched:false) parked
    end
  end

(* Removal from service: the breaker at process scope, and the only
   correct answer to a child caught lying about a content hash. Kill
   it and re-shed its traffic. A [Breaker] quarantine is a suspicion
   about the environment — the shard earns its way back through
   cooldown + probation probes (see [tick]); an [Integrity] quarantine
   is permanent. *)
and quarantine t k ~cause reason =
  let ch = t.kids.(k) in
  if not ch.cs.ss_quarantined then begin
    ch.cs.ss_quarantined <- true;
    ch.c_quar <- Some cause;
    ch.c_quar_since <- Clock.mono_s ();
    ch.c_probation <- -1;
    ch.c_restart_at <- 0.0;
    t.stats.quarantines <- t.stats.quarantines + 1;
    (match cause with
     | Breaker -> t.stats.quar_breaker <- t.stats.quar_breaker + 1
     | Integrity -> t.stats.quar_integrity <- t.stats.quar_integrity + 1);
    emit_obs t "fleet_quarantine" (Printf.sprintf "shard %d: %s" k reason);
    fire t (Child_down (k, "quarantined: " ^ reason));
    let orphans = Hashtbl.fold (fun _ d acc -> d :: acc) ch.c_outstanding [] in
    let parked = List.of_seq (Queue.to_seq ch.c_queue) in
    Hashtbl.reset ch.c_outstanding;
    Queue.clear ch.c_queue;
    Child.kill ch.c;
    List.iter (redispatch t ~dispatched:true) (List.rev orphans);
    List.iter (redispatch t ~dispatched:false) parked
  end

(* One orphaned dispatch of a dead/quarantined child. [dispatched]
   distinguishes work the child actually held (counts against the job's
   incarnation budget) from work merely parked in its queue. *)
and redispatch t ~dispatched d =
  match d.d_kind with
  | Probe -> ()
  | Audit p_iid -> (
    (* the audit died with its child; resolve in the primary's favour
       rather than wedging the held response *)
    match Hashtbl.find_opt t.audits p_iid with
    | Some st ->
      st.a_abandoned <- true;
      st.a_a_fp <- Some "";
      st.a_a_shard <- -1;
      conclude_audit t p_iid st
    | None -> ())
  | Tiebreak p_iid -> (
    match Hashtbl.find_opt t.audits p_iid with
    | Some st ->
      Hashtbl.remove t.audits p_iid;
      finalize_conflict_failure t st "integrity tiebreak lost its child"
    | None -> ())
  | Primary ->
    if dispatched then d.d_tries <- d.d_tries + 1;
    if d.d_tries > t.cfg.redispatch_limit then begin
      (* a poison pill: it has now consumed its incarnation budget of
         child processes — fail it rather than grind the fleet down
         (the PR 4 rule that a crash loop is bounded by crashing jobs,
         at process scope) *)
      emit_router_failure t d.d_client ~id:d.d_req.Job.id
        ~op:(Job.op_name d.d_req.Job.spec) ~seq:d.d_seq ~admit:d.d_admit
        (Printf.sprintf "job killed its shard child %d times" d.d_tries);
      settle_key_failure t d
        (Printf.sprintf "job killed its shard child %d times" d.d_tries)
    end
    else begin
      match effective_shard t d.d_req with
      | Some k -> enqueue t k d
      | None ->
        emit_router_failure t d.d_client ~id:d.d_req.Job.id
          ~op:(Job.op_name d.d_req.Job.spec) ~seq:d.d_seq ~admit:d.d_admit
          "no healthy shard available";
        settle_key_failure t d "no healthy shard available"
    end

(* A primary that will never produce a child response: release its
   parked duplicates with the same verdict (they are the same
   computation — they share its fate). *)
and settle_key_failure t d msg =
  if d.d_key <> "" then begin
    (match Hashtbl.find_opt t.waiters d.d_key with
     | Some ws ->
       List.iter
         (fun w ->
           emit_router_failure t w.w_client ~id:w.w_id
             ~op:(Job.op_name d.d_req.Job.spec) ~seq:w.w_seq ~admit:w.w_admit msg)
         (List.rev !ws)
     | None -> ());
    Hashtbl.remove t.waiters d.d_key;
    Hashtbl.remove t.audits d.d_iid
  end

(* ---- audit verdicts ----------------------------------------------- *)

and finalize_conflict_failure t st msg =
  let d = st.a_primary in
  emit_router_failure t d.d_client ~id:d.d_req.Job.id ~op:(Job.op_name d.d_req.Job.spec)
    ~seq:d.d_seq ~admit:d.d_admit msg;
  settle_key_failure t d msg

(* Both the primary and the audit answered (or the audit was
   abandoned). Agreement forwards the held primary; disagreement goes
   to a third-shard majority vote. *)
and conclude_audit t p_iid st =
  match (st.a_p_fields, st.a_p_fp, st.a_a_fp) with
  | Some fields, Some pfp, Some afp ->
    if st.a_abandoned || String.equal pfp afp then begin
      Hashtbl.remove t.audits p_iid;
      finalize_primary t st.a_primary fields
    end
    else begin
      t.stats.digest_conflicts <- t.stats.digest_conflicts + 1;
      emit_obs t "fleet_digest_conflict"
        (Printf.sprintf "shards %d vs %d disagree on %s" st.a_primary.d_shard
           st.a_a_shard st.a_primary.d_req.Job.id);
      match
        next_healthy_excluding t ~avoid:[ st.a_primary.d_shard; st.a_a_shard ]
      with
      | Some third ->
        st.a_t_shard <- third;
        let d =
          {
            d_iid = Printf.sprintf "t%d" t.next_iid;
            d_req = st.a_primary.d_req;
            d_key = "";
            d_seq = -1;
            d_admit = Clock.mono_s ();
            d_kind = Tiebreak p_iid;
            d_client = st.a_primary.d_client;
            d_tries = 0;
            d_shard = third;
          }
        in
        t.next_iid <- t.next_iid + 1;
        enqueue t third d
      | None ->
        (* no quorum possible: fail closed — neither disputed answer is
           served, both suspects are quarantined (quarantining second
           first: quarantining can re-shed onto shards quarantined
           later, so order by index descending to stay deterministic) *)
        Hashtbl.remove t.audits p_iid;
        let a, b = (st.a_primary.d_shard, st.a_a_shard) in
        quarantine t (max a b) ~cause:Integrity "unresolvable integrity conflict";
        quarantine t (min a b) ~cause:Integrity "unresolvable integrity conflict";
        finalize_conflict_failure t st
          "response integrity conflict with no healthy quorum"
    end
  | _ -> ()

(* The tiebreak answered: majority wins, the odd one out is quarantined,
   and the client receives the majority answer. *)
and conclude_tiebreak t p_iid st ~t_fields ~t_fp =
  Hashtbl.remove t.audits p_iid;
  let pfp = Option.get st.a_p_fp and d = st.a_primary in
  let afp = Option.get st.a_a_fp in
  if String.equal t_fp pfp then begin
    quarantine t st.a_a_shard ~cause:Integrity "audit digest mismatch (outvoted 2-1)";
    match st.a_p_fields with
    | Some fields -> finalize_primary t d fields
    | None -> finalize_conflict_failure t st "integrity vote lost the primary response"
  end
  else if String.equal t_fp afp then begin
    quarantine t d.d_shard ~cause:Integrity "served a wrong content hash (outvoted 2-1)";
    (* the tiebreak child's answer is the agreed majority payload; serve
       it under the client's identifiers *)
    finalize_primary t d t_fields
  end
  else begin
    quarantine t st.a_t_shard ~cause:Integrity "integrity vote: three-way disagreement";
    quarantine t (max d.d_shard st.a_a_shard) ~cause:Integrity
      "integrity vote: three-way disagreement";
    quarantine t (min d.d_shard st.a_a_shard) ~cause:Integrity
      "integrity vote: three-way disagreement";
    finalize_conflict_failure t st "response integrity conflict: three-way disagreement"
  end

(* ---- settling primaries ------------------------------------------- *)

(* Forward one primary child response to the client, fill the replay
   cache (and its persistent tier), and release every parked duplicate
   with the same template — the byte-identical payload guarantee is
   this single code path. *)
and finalize_primary t d fields =
  let status = Option.value ~default:"failed" (get_str fields "status") in
  let ss = if d.d_shard >= 0 then Some t.kids.(d.d_shard).cs else None in
  emit_from_fields t d.d_client ~id:d.d_req.Job.id ~seq:d.d_seq ~admit:d.d_admit
    ~attempts:(match List.assoc_opt "attempts" fields with Some (J.Int n) -> n | _ -> 0)
    ~worker:d.d_shard ~shard_stats:ss fields;
  if d.d_key <> "" then begin
    let c =
      if status = "done" then begin
        let c = make_cached ~worker:d.d_shard fields in
        if t.cfg.replay then Hashtbl.replace t.cache d.d_key c;
        disk_replay_store t d.d_req d.d_key c;
        Some c
      end
      else None
    in
    (match Hashtbl.find_opt t.waiters d.d_key with
     | Some ws ->
       List.iter
         (fun w ->
           match c with
           | Some c -> emit_replay t w.w_client ~id:w.w_id ~seq:w.w_seq ~admit:w.w_admit c
           | None ->
             t.stats.replays <- t.stats.replays + 1;
             emit_from_fields t w.w_client ~id:w.w_id ~seq:w.w_seq ~admit:w.w_admit
               ~attempts:0 ~worker:d.d_shard ~shard_stats:None fields)
         (List.rev !ws)
     | None -> ());
    Hashtbl.remove t.waiters d.d_key
  end

(* ---- child traffic ------------------------------------------------ *)

let handle_child_line t k line =
  let ch = t.kids.(k) in
  ch.c_last_rx <- Clock.mono_s ();
  ch.c_consec_deaths <- 0;
  match J.parse_opt line with
  | Some (J.Obj fields) -> (
    match get_str fields "id" with
    | None -> emit_obs t "fleet_bad_child_line" (Printf.sprintf "shard %d: no id" k)
    | Some iid -> (
      match Hashtbl.find_opt ch.c_outstanding iid with
      | None ->
        (* stale: a response for a dispatch this incarnation no longer
           owns (settled by redispatch machinery) — drop, never double
           settle *)
        emit_obs t "fleet_stale_response" (Printf.sprintf "shard %d: %s" k iid)
      | Some d -> (
        Hashtbl.remove ch.c_outstanding iid;
        (match d.d_kind with
         | Probe ->
           ch.c_probe_out <- false;
           (* probation: a quarantined-by-breaker shard earns its way
              back with K consecutive clean probe responses *)
           if ch.cs.ss_quarantined && ch.c_probation >= 0 then begin
             ch.c_probation <- ch.c_probation + 1;
             if ch.c_probation >= t.cfg.rejoin_probes then begin
               ch.cs.ss_quarantined <- false;
               ch.c_quar <- None;
               ch.c_probation <- -1;
               ch.c_consec_deaths <- 0;
               ch.c_restart_times <- [];
               t.stats.rejoins <- t.stats.rejoins + 1;
               emit_obs t "fleet_rejoin"
                 (Printf.sprintf "shard %d re-admitted after %d clean probes" k
                    t.cfg.rejoin_probes);
               fire t (Child_rejoin (k, ch.cs.ss_routed))
             end
           end
         | Primary -> (
           let fields =
             set_field fields "worker" (J.Int k)
           in
           match Hashtbl.find_opt t.audits iid with
           | Some st ->
             st.a_p_fields <- Some fields;
             st.a_p_fp <- Some (payload_fp fields);
             conclude_audit t iid st
           | None -> finalize_primary t d fields)
         | Audit p_iid -> (
           match Hashtbl.find_opt t.audits p_iid with
           | Some st ->
             st.a_a_fp <- Some (payload_fp fields);
             st.a_a_shard <- k;
             conclude_audit t p_iid st
           | None -> ())
         | Tiebreak p_iid -> (
           match Hashtbl.find_opt t.audits p_iid with
           | Some st ->
             conclude_tiebreak t p_iid st
               ~t_fields:(set_field fields "worker" (J.Int k))
               ~t_fp:(payload_fp fields)
           | None -> ()));
        pump t k)))
  | _ ->
    (* a torn or non-JSON line from a child is a protocol violation —
       treat the child as compromised-or-dying *)
    handle_death t k "torn NDJSON from child"

(* ---- admission ---------------------------------------------------- *)

let admit t cl (req : Job.request) =
  t.stats.submitted <- t.stats.submitted + 1;
  cl.cl_pending <- cl.cl_pending + 1;
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let admit_t = Clock.mono_s () in
  let key = if t.cfg.replay && Shard.replayable req then Shard.content_key req else "" in
  if key <> "" && Hashtbl.mem t.cache key then
    emit_replay t cl ~id:req.Job.id ~seq ~admit:admit_t (Hashtbl.find t.cache key)
  else if key <> "" && Hashtbl.mem t.waiters key then begin
    t.stats.coalesced <- t.stats.coalesced + 1;
    let ws = Hashtbl.find t.waiters key in
    ws := { w_id = req.Job.id; w_seq = seq; w_admit = admit_t; w_client = cl } :: !ws
  end
  else begin
    match disk_replay_load t req key with
    | Some c ->
      (* the persistent tier survived a router restart: re-install the
         template in the memory cache and serve it as an ordinary
         replay — it already passed the full zero-trust reload *)
      Hashtbl.replace t.cache key c;
      t.stats.disk_replays <- t.stats.disk_replays + 1;
      emit_replay t cl ~id:req.Job.id ~seq ~admit:admit_t c
    | None -> (
      if key <> "" then begin
        Hashtbl.replace t.waiters key (ref []);
        t.distinct_keys <- t.distinct_keys + 1
      end;
      match effective_shard t req with
      | None ->
        emit_router_failure t cl ~id:req.Job.id ~op:(Job.op_name req.Job.spec) ~seq
          ~admit:admit_t "no healthy shard available";
        if key <> "" then Hashtbl.remove t.waiters key
      | Some k ->
        let iid = Printf.sprintf "j%d" t.next_iid in
        t.next_iid <- t.next_iid + 1;
        let d =
          {
            d_iid = iid;
            d_req = req;
            d_key = key;
            d_seq = seq;
            d_admit = admit_t;
            d_kind = Primary;
            d_client = cl;
            d_tries = 0;
            d_shard = k;
          }
        in
        (* audit sampling: every Nth distinct content key is shadow-
           dispatched to a second shard; the client response is held for
           the verdict, so an audited lie never reaches a client at all *)
        (if
           t.cfg.audit_every > 0 && key <> ""
           && t.distinct_keys mod t.cfg.audit_every = 0
           && healthy_count t >= 2
         then
           match next_healthy_excluding t ~avoid:[ k ] with
           | Some ak ->
             t.stats.audits <- t.stats.audits + 1;
             let a_iid = Printf.sprintf "a%d" t.next_iid in
             t.next_iid <- t.next_iid + 1;
             Hashtbl.replace t.audits iid
               {
                 a_primary = d;
                 a_p_fields = None;
                 a_p_fp = None;
                 a_a_shard = ak;
                 a_a_fp = None;
                 a_t_shard = -1;
                 a_abandoned = false;
               };
             let ad =
               {
                 d_iid = a_iid;
                 d_req = req;
                 d_key = "";
                 d_seq = -1;
                 d_admit = admit_t;
                 d_kind = Audit iid;
                 d_client = t.sink;
                 d_tries = 0;
                 d_shard = ak;
               }
             in
             enqueue t ak ad
           | None -> ());
        enqueue t k d)
  end

(* Textual id/tail split of a raw request line. Our own serializer puts
   [id] first and the ids in every mix are escape-free; anything that
   deviates simply takes the full parser. The tail (everything from the
   id's closing quote on) identifies the request content: the semantic
   content key is a pure function of it, so [t.memo] can map tails to
   keys permanently. *)
let split_id_tail line =
  let pfx = {|{"id":"|} in
  let pl = String.length pfx in
  let n = String.length line in
  if n > pl && String.sub line 0 pl = pfx then begin
    let rec scan i =
      if i >= n then None
      else
        match line.[i] with
        | '\\' -> None
        | '"' -> Some (String.sub line pl (i - pl), String.sub line i (n - i))
        | _ -> scan (i + 1)
    in
    scan pl
  end
  else None

(* The duplicate fast path: a request whose tail was seen before skips
   JSON parsing entirely — the memoized content key either replays the
   cached response or coalesces onto the in-flight primary. Everything
   else (first occurrence, non-replayable op, unusual framing) goes
   through the full parser, which also teaches the memo. *)
let admit_line t cl line =
  let fast =
    if not t.cfg.replay then None
    else
      match split_id_tail line with
      | None -> None
      | Some (id, tail) -> (
        match Hashtbl.find_opt t.memo tail with
        | Some key when key <> "" -> (
          match Hashtbl.find_opt t.cache key with
          | Some c -> Some (`Replay (id, c))
          | None -> (
            match Hashtbl.find_opt t.waiters key with
            | Some ws -> Some (`Coalesce (id, ws))
            | None -> None))
        | _ -> None)
  in
  match fast with
  | Some action ->
    t.stats.submitted <- t.stats.submitted + 1;
    cl.cl_pending <- cl.cl_pending + 1;
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let at = Clock.mono_s () in
    (match action with
     | `Replay (id, c) -> emit_replay t cl ~id ~seq ~admit:at c
     | `Coalesce (id, ws) ->
       t.stats.coalesced <- t.stats.coalesced + 1;
       ws := { w_id = id; w_seq = seq; w_admit = at; w_client = cl } :: !ws);
    Ok ()
  | None -> (
    (* parse with the fleet's own default backend: a request without a
       ["backend"] field must get the same content key the children
       will compute for it, or the replay cache would serve one
       backend's payload for the other's key *)
    match Job.request_of_line ~default_backend:t.cfg.backend line with
    | Ok req ->
      (match split_id_tail line with
       | Some (_, tail) ->
         Hashtbl.replace t.memo tail
           (if Shard.replayable req then Shard.content_key req else "")
       | None -> ());
      admit t cl req;
      Ok ()
    | Error msg -> Error msg)

let handle_client_line t cl line =
  t.stats.received <- t.stats.received + 1;
  if String.trim line <> "" then
    match admit_line t cl line with
    | Ok () -> ()
    | Error msg ->
      (* malformed lines are answered by the router itself; children
         never see bytes that failed to parse *)
      t.stats.malformed <- t.stats.malformed + 1;
      let id = Option.bind (J.parse_opt line) (fun j ->
          match J.member "id" j with Some (J.Str s) -> Some s | _ -> None)
      in
      write_client cl (Job.error_line ~id msg)

(* ---- housekeeping: probes + watchdog + restarts + rejoin ---------- *)

let send_probe t k now =
  let ch = t.kids.(k) in
  let iid = Printf.sprintf "p%d" t.next_iid in
  t.next_iid <- t.next_iid + 1;
  let d =
    {
      d_iid = iid;
      d_req = Job.make ~id:iid Job.Ping;
      d_key = "";
      d_seq = -1;
      d_admit = now;
      d_kind = Probe;
      d_client = t.sink;
      d_tries = 0;
      d_shard = k;
    }
  in
  ch.c_probe_out <- true;
  Hashtbl.replace ch.c_outstanding iid d;
  if not (Child.send_line ch.c (request_line d)) then
    handle_death t k "write failed (probe)"

let tick t =
  let now = Clock.mono_s () in
  let probe_s = float_of_int t.cfg.probe_interval_ms /. 1000.0 in
  let hang_s = float_of_int t.cfg.hang_timeout_ms /. 1000.0 in
  Array.iteri
    (fun k ch ->
      if ch.cs.ss_quarantined then begin
        (* breaker quarantines are probed back to life; integrity
           quarantines never are *)
        match ch.c_quar with
        | Some Breaker when t.cfg.rejoin_cooldown_ms > 0 && not t.stop ->
          if ch.c.Child.fd = None then begin
            if now -. ch.c_quar_since >= float_of_int t.cfg.rejoin_cooldown_ms /. 1000.0
            then begin
              try
                Child.restart ch.c ~cli:t.cli ~args:ch.c_args
                  ~connect_timeout_s:t.cfg.connect_timeout_s;
                ch.c_probation <- 0;
                ch.c_probe_out <- false;
                ch.c_last_rx <- now;
                emit_obs t "fleet_probation_start" (Printf.sprintf "shard %d" k);
                fire t (Child_up (k, ch.c.Child.pid))
              with Child.Child_failed m ->
                emit_obs t "fleet_probation_restart_failed" m;
                ch.c_quar_since <- now
            end
          end
          else if
            t.cfg.hang_timeout_ms > 0 && ch.c_probe_out && now -. ch.c_last_rx >= hang_s
          then handle_death t k "probation watchdog: hang timeout"
          else if
            t.cfg.probe_interval_ms > 0 && (not ch.c_probe_out)
            && now -. ch.c_last_rx >= probe_s
          then send_probe t k now
        | _ -> ()
      end
      else if ch.c.Child.fd = None then begin
        (* deferred crash-restart, once its backoff delay has elapsed —
           the shard stays formally healthy meanwhile, parking its
           routed work. Restarts proceed even during a stop/drain so
           parked work can still settle. *)
        if ch.c_restart_at > 0.0 && now >= ch.c_restart_at then begin
          ch.c_restart_at <- 0.0;
          try
            Child.restart ch.c ~cli:t.cli ~args:ch.c_args
              ~connect_timeout_s:t.cfg.connect_timeout_s;
            ch.c_last_rx <- now;
            ch.c_restart_times <- now :: ch.c_restart_times;
            t.stats.restarts <- t.stats.restarts + 1;
            ch.cs.ss_restarts <- ch.cs.ss_restarts + 1;
            fire t (Child_up (k, ch.c.Child.pid));
            pump t k
          with Child.Child_failed m ->
            emit_obs t "fleet_child_restart_failed" m;
            quarantine t k ~cause:Breaker ("restart failed: " ^ m)
        end
      end
      else begin
        (* watchdog: traffic owed (jobs or a probe in flight) and
           nothing received for a whole hang timeout — the child is
           wedged. Unlike a hung domain, a hung process can be killed;
           handle_death redispatches its work. *)
        if
          t.cfg.hang_timeout_ms > 0
          && (Hashtbl.length ch.c_outstanding > 0 || ch.c_probe_out)
          && now -. ch.c_last_rx >= hang_s
        then begin
          t.stats.hangs <- t.stats.hangs + 1;
          ch.cs.ss_hangs <- ch.cs.ss_hangs + 1;
          emit_obs t "fleet_child_hang"
            (Printf.sprintf "shard %d: no traffic for %dms" k t.cfg.hang_timeout_ms);
          handle_death t k "watchdog: hang timeout"
        end
        else if
          t.cfg.probe_interval_ms > 0
          && (not ch.c_probe_out)
          && now -. ch.c_last_rx >= probe_s
        then send_probe t k now
      end)
    t.kids;
  (* slow-client isolation: a client whose write buffer has not fully
     drained within the linger is dropped — its fds stop mattering,
     its jobs keep settling internally, and nobody else ever waited *)
  if t.cfg.client_linger_ms > 0 then
    List.iter
      (fun cl ->
        if (not cl.cl_gone) && Buffer.length cl.cl_wbuf > 0 then begin
          if cl.cl_drain_deadline = 0.0 then
            cl.cl_drain_deadline <-
              now +. (float_of_int t.cfg.client_linger_ms /. 1000.0)
          else if now >= cl.cl_drain_deadline then begin
            Buffer.clear cl.cl_wbuf;
            cl.cl_gone <- true;
            t.stats.slow_client_drops <- t.stats.slow_client_drops + 1;
            emit_obs t "fleet_slow_client_drop"
              (Printf.sprintf "client %d: write buffer undrained for %dms" cl.cl_id
                 t.cfg.client_linger_ms)
          end
        end)
      t.clients

(* ---- metrics ------------------------------------------------------ *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n /. 100.0)) - 1))

let shard_json (ch : child_state) =
  let lat = Array.of_list ch.cs.ss_lat_ms in
  Array.sort compare lat;
  J.Obj
    [
      ("shard", J.Int ch.cs.ss_shard);
      ("routed", J.Int ch.cs.ss_routed);
      ("done", J.Int ch.cs.ss_done);
      ("deaths", J.Int ch.cs.ss_deaths);
      ("restarts", J.Int ch.cs.ss_restarts);
      ("hangs", J.Int ch.cs.ss_hangs);
      ("quarantined", J.Bool ch.cs.ss_quarantined);
      ("p50_ms", J.Float (percentile lat 50.0));
      ("p99_ms", J.Float (percentile lat 99.0));
    ]

let stats_json (s : stats) =
  J.Obj
    [
      ("received", J.Int s.received);
      ("malformed", J.Int s.malformed);
      ("submitted", J.Int s.submitted);
      ("done", J.Int s.done_);
      ("rejected", J.Int s.rejected);
      ("timed_out", J.Int s.timed_out);
      ("failed", J.Int s.failed);
      ("conserved", J.Bool (conserved s));
      ("replays", J.Int s.replays);
      ("coalesced", J.Int s.coalesced);
      ("audits", J.Int s.audits);
      ("digest_conflicts", J.Int s.digest_conflicts);
      ("deaths", J.Int s.deaths);
      ("restarts", J.Int s.restarts);
      ("hangs", J.Int s.hangs);
      ("quarantines", J.Int s.quarantines);
      ("resheds", J.Int s.resheds);
      ("interrupted", J.Bool s.interrupted);
      ("backoffs", J.Int s.backoffs);
      ("rejoins", J.Int s.rejoins);
      ("quar_breaker", J.Int s.quar_breaker);
      ("quar_integrity", J.Int s.quar_integrity);
      ("disk_replays", J.Int s.disk_replays);
      ("slow_client_drops", J.Int s.slow_client_drops);
    ]

(* The per-child serve metrics documents (written by `serve --json` at
   child exit) — the fleet-wide view of disk-store hit/corrupt
   counters etc. Collected after the children have stopped. *)
let child_metrics_json t =
  J.List
    (List.filter_map
       (fun k ->
         let path = Filename.concat t.dir (Printf.sprintf "metrics-%d.json" k) in
         if Sys.file_exists path then begin
           let ic = open_in_bin path in
           let n = in_channel_length ic in
           let s = really_input_string ic n in
           close_in_noerr ic;
           Option.map
             (fun j -> J.Obj [ ("shard", J.Int k); ("metrics", j) ])
             (J.parse_opt s)
         end
         else None)
       (List.init (Array.length t.kids) Fun.id))

let metrics_json t =
  J.Obj
    ([
       ( "fleet",
         J.Obj
           [
             ("children", J.Int t.cfg.children);
             ("workers_per_child", J.Int t.cfg.workers);
             ("window", J.Int t.cfg.window);
             ("replay", J.Bool t.cfg.replay);
             ("audit_every", J.Int t.cfg.audit_every);
           ] );
       ("router", stats_json t.stats);
       ("shards", J.List (Array.to_list (Array.map shard_json t.kids)));
       ("children_metrics", child_metrics_json t);
     ]
    @ match t.rstore with
      | Some rs -> [ ("replay_store", Fs.counters_json rs) ]
      | None -> [])

(* ---- main loop ---------------------------------------------------- *)

let unsettled t = t.stats.submitted - (t.stats.done_ + t.stats.rejected + t.stats.timed_out + t.stats.failed)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sofia-fleet-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  mkdir_p d;
  d

(* Startup janitor for a caller-provided socket dir, mirroring the
   store_fs tmp janitor: a fleet killed with SIGKILL leaves dead
   shard-*.sock files and metrics debris behind, and a fresh fleet
   should not fail (or inherit stale metrics) because of them. Deletion
   follows Wire.prepare_socket_path's rule exactly — a socket is
   removed only after a probe connect proves nobody is listening
   (ECONNREFUSED); a live socket is left for the child's own bind to
   refuse, and a plain file squatting on the name is never deleted. *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let janitor_socket_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        if Filename.check_suffix name ".tmp" then
          (try Sys.remove path with Sys_error _ -> ())
        else if starts_with ~prefix:"metrics-" name && Filename.check_suffix name ".json"
        then (try Sys.remove path with Sys_error _ -> ())
        else if starts_with ~prefix:"shard-" name && Filename.check_suffix name ".sock"
        then begin
          match Unix.stat path with
          | exception Unix.Unix_error (_, _, _) -> ()
          | st ->
            if st.Unix.st_kind = Unix.S_SOCK then begin
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              let dead =
                match Unix.connect fd (Unix.ADDR_UNIX path) with
                | () -> false (* a live fleet still owns it *)
                | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
                  true
                | exception Unix.Unix_error (_, _, _) -> false
              in
              (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
              if dead then try Sys.remove path with Sys_error _ -> ()
            end
        end)
      entries

let cleanup_dir t =
  Array.iter
    (fun ch ->
      try Sys.remove ch.c.Child.socket_path with Sys_error _ -> ())
    t.kids;
  List.iter
    (fun k ->
      try Sys.remove (Filename.concat t.dir (Printf.sprintf "metrics-%d.json" k))
      with Sys_error _ -> ())
    (List.init (Array.length t.kids) Fun.id);
  if t.dir_created then try Unix.rmdir t.dir with Unix.Unix_error _ -> ()

let sink_client () =
  {
    cl_id = -1;
    cl_in = Unix.stdin;
    cl_out = Unix.stdout;
    cl_rbuf = Buffer.create 1;
    cl_wbuf = Buffer.create 1;
    cl_eof = true;
    cl_gone = true;  (* writes are dropped; pending is never read *)
    cl_pending = 0;
    cl_drain_deadline = 0.0;
    cl_owned = false;
  }

let create ?(obs = Obs.none) cfg =
  if cfg.children < 1 then invalid_arg "Router: children must be >= 1";
  let cli =
    match cfg.cli with
    | Some c -> c
    | None -> (
      match Child.find_cli () with
      | Some c -> c
      | None -> failwith "fleet: cannot locate the sofia_cli binary (set SOFIA_CLI)")
  in
  let dir, dir_created =
    match cfg.socket_dir with
    | Some d ->
      mkdir_p d;
      janitor_socket_dir d;
      (d, false)
    | None -> (fresh_dir (), true)
  in
  let rstore =
    Option.map (fun d -> Fs.open_store ~obs ~dir:d ()) cfg.replay_dir
  in
  let stats =
    {
      received = 0; malformed = 0; submitted = 0;
      done_ = 0; rejected = 0; timed_out = 0; failed = 0;
      replays = 0; coalesced = 0; audits = 0; digest_conflicts = 0;
      deaths = 0; restarts = 0; hangs = 0; quarantines = 0; resheds = 0;
      interrupted = false;
      backoffs = 0; rejoins = 0; quar_breaker = 0; quar_integrity = 0;
      disk_replays = 0; slow_client_drops = 0;
      shards =
        Array.init cfg.children (fun k ->
            {
              ss_shard = k; ss_routed = 0; ss_done = 0; ss_deaths = 0;
              ss_restarts = 0; ss_hangs = 0; ss_quarantined = false; ss_lat_ms = [];
            });
    }
  in
  let t0 =
    {
      cfg; cli; dir; dir_created; stats; obs;
      kids = [||];
      cache = Hashtbl.create 512;
      memo = Hashtbl.create 512;
      waiters = Hashtbl.create 64;
      audits = Hashtbl.create 16;
      next_seq = 0; next_iid = 0; completion = 0; distinct_keys = 0; settled = 0;
      stop = false;
      clients = [];
      next_client = 0;
      sink = sink_client ();
      listen = None;
      accepts_left = 0;
      rng = 0x5EEDL;
      rstore;
      rkeys = Hashtbl.create 8;
    }
  in
  let kids =
    Array.init cfg.children (fun k ->
        let sock, args = child_args t0 k in
        (* a stale socket file from a previous fleet is cleared by the
           janitor above (caller-provided dirs) and, as a second line,
           by the child's own prepare_socket_path probe (PR 4) *)
        let c =
          Child.start ~cli ~args ~shard:k ~socket_path:sock
            ~connect_timeout_s:cfg.connect_timeout_s
        in
        {
          c;
          cs = stats.shards.(k);
          c_outstanding = Hashtbl.create 64;
          c_queue = Queue.create ();
          c_last_rx = Clock.mono_s ();
          c_consec_deaths = 0;
          c_probe_out = false;
          c_args = args;
          c_quar = None;
          c_quar_since = 0.0;
          c_probation = -1;
          c_restart_at = 0.0;
          c_restart_times = [];
        })
  in
  let t = { t0 with kids } in
  Array.iter (fun ch -> fire t (Child_up (ch.c.Child.shard, ch.c.Child.pid))) t.kids;
  t

let add_client t ~owned fd_in fd_out =
  let cl =
    {
      cl_id = t.next_client;
      cl_in = fd_in;
      cl_out = fd_out;
      cl_rbuf = Buffer.create 4096;
      cl_wbuf = Buffer.create 4096;
      cl_eof = false;
      cl_gone = false;
      cl_pending = 0;
      cl_drain_deadline = 0.0;
      cl_owned = owned;
    }
  in
  t.next_client <- t.next_client + 1;
  t.clients <- t.clients @ [ cl ];
  cl

let take_client_lines cl =
  let s = Buffer.contents cl.cl_rbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i ->
    Buffer.clear cl.cl_rbuf;
    Buffer.add_substring cl.cl_rbuf s (i + 1) (String.length s - i - 1);
    String.split_on_char '\n' (String.sub s 0 i)

let client_active cl = not (cl.cl_eof || cl.cl_gone)

let accepting t = t.listen <> None && t.accepts_left <> 0 && not t.stop

let clients_done t =
  (not (accepting t)) && List.for_all (fun cl -> not (client_active cl)) t.clients

let close_client_fds cl =
  if cl.cl_owned then begin
    (try Unix.close cl.cl_in with Unix.Unix_error (_, _, _) -> ());
    if cl.cl_out != cl.cl_in then
      try Unix.close cl.cl_out with Unix.Unix_error (_, _, _) -> ()
  end

(* Past this many bytes of undrained output we stop reading new
   requests from that client — bounded memory per stalled reader. *)
let client_wbuf_cap = 1 lsl 20

let serve ?(signals = false) t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let signal_hits = ref 0 in
  let saved = ref [] in
  if signals then begin
    let handler =
      Sys.Signal_handle
        (fun _ ->
          incr signal_hits;
          if !signal_hits >= 2 then begin
            (* second signal: stop being graceful *)
            Array.iter (fun ch -> Child.kill ch.c) t.kids;
            exit 130
          end)
    in
    List.iter
      (fun s ->
        match Sys.signal s handler with
        | old -> saved := (s, old) :: !saved
        | exception (Invalid_argument _ | Sys_error _) -> ())
      [ Sys.sigint; Sys.sigterm ]
  end;
  let chunk = Bytes.create 65536 in
  let finished () =
    (t.stop || clients_done t)
    && unsettled t = 0
    && List.for_all (fun cl -> cl.cl_gone || Buffer.length cl.cl_wbuf = 0) t.clients
  in
  while not (finished ()) do
    if (not t.stop) && !signal_hits > 0 then begin
      t.stop <- true;
      t.stats.interrupted <- true
    end;
    let child_fds =
      Array.to_list t.kids |> List.filter_map (fun ch -> ch.c.Child.fd)
    in
    (* simple flow control: past ~4 windows of unsettled work per
       shard, stop pulling client input and let the socket buffers
       push back — bounds router memory under open-loop overload *)
    let backlogged =
      unsettled t >= 4 * t.cfg.window * Array.length t.kids
    in
    let client_rfds =
      if t.stop || backlogged then []
      else
        List.filter_map
          (fun cl ->
            if client_active cl && Buffer.length cl.cl_wbuf < client_wbuf_cap then
              Some cl.cl_in
            else None)
          t.clients
    in
    let listen_fds = if accepting t then Option.to_list t.listen else [] in
    let wset =
      List.filter_map
        (fun cl ->
          if (not cl.cl_gone) && Buffer.length cl.cl_wbuf > 0 then Some cl.cl_out
          else None)
        t.clients
    in
    let readable, writable, _ =
      try Unix.select (child_fds @ client_rfds @ listen_fds) wset [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* children first: responses free windows before new admissions *)
    Array.iteri
      (fun k ch ->
        match ch.c.Child.fd with
        | Some fd when List.memq fd readable -> (
          match Child.drain_input ch.c with
          | `Eof ->
            if
              (t.stop || clients_done t)
              && (not ch.cs.ss_quarantined)
              && Hashtbl.length ch.c_outstanding = 0
              && Queue.is_empty ch.c_queue
            then begin
              (* orderly exit during drain (e.g. terminal-delivered
                 SIGINT reached the whole process group) *)
              Child.close_fd ch.c;
              ignore (Child.reap ch.c ~timeout_s:2.0)
            end
            else handle_death t k "connection closed"
          | `Lines lines -> List.iter (handle_child_line t k) lines)
        | _ -> ())
      t.kids;
    (* new connections *)
    (match t.listen with
     | Some lfd when accepting t && List.memq lfd readable -> (
       match Unix.accept ~cloexec:true lfd with
       | fd, _ ->
         Unix.set_nonblock fd;
         if t.accepts_left > 0 then t.accepts_left <- t.accepts_left - 1;
         ignore (add_client t ~owned:true fd fd)
       | exception
           Unix.Unix_error
             ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
         -> ())
     | _ -> ());
    (* per-client input *)
    List.iter
      (fun cl ->
        if client_active cl && List.memq cl.cl_in readable then begin
          match Unix.read cl.cl_in chunk 0 (Bytes.length chunk) with
          | 0 -> cl.cl_eof <- true
          | n ->
            Buffer.add_subbytes cl.cl_rbuf chunk 0 n;
            List.iter (handle_client_line t cl) (take_client_lines cl)
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
            cl.cl_eof <- true
        end)
      t.clients;
    (* drain write buffers that have room again *)
    List.iter
      (fun cl ->
        if (not cl.cl_gone) && List.memq cl.cl_out writable then flush_client cl)
      t.clients;
    (* a trailing unterminated line at EOF is still a request *)
    List.iter
      (fun cl ->
        if cl.cl_eof && Buffer.length cl.cl_rbuf > 0 then begin
          let line = Buffer.contents cl.cl_rbuf in
          Buffer.clear cl.cl_rbuf;
          handle_client_line t cl line
        end)
      t.clients;
    tick t;
    (* retire clients that are fully answered (or gone) *)
    let retired, live =
      List.partition
        (fun cl ->
          cl.cl_gone || (cl.cl_eof && cl.cl_pending = 0 && Buffer.length cl.cl_wbuf = 0))
        t.clients
    in
    List.iter close_client_fds retired;
    t.clients <- live
  done;
  (* graceful fleet shutdown: close our end, --once children drain and
     exit; stragglers (and quarantined/probation incarnations) are
     killed. No child outlives the router. *)
  Array.iter
    (fun ch ->
      if ch.cs.ss_quarantined then Child.kill ch.c
      else Child.stop_gently ch.c ~timeout_s:5.0)
    t.kids;
  List.iter close_client_fds t.clients;
  List.iter (fun (s, old) -> try Sys.set_signal s old with _ -> ()) !saved;
  t.stats

(* One-call fronts: spawn the fleet, serve the client fds, stop the
   children, return the stats and the fleet metrics document (which
   needs the children stopped: their serve --json files are written at
   child exit). *)

let finish ?signals t =
  let cleanup_on_error e =
    Array.iter (fun ch -> Child.kill ch.c) t.kids;
    cleanup_dir t;
    raise e
  in
  let stats = try serve ?signals t with e -> cleanup_on_error e in
  let doc = metrics_json t in
  cleanup_dir t;
  (stats, doc)

let run ?obs ?signals cfg ~client_in ~client_out =
  let t = create ?obs cfg in
  ignore (add_client t ~owned:false client_in client_out);
  finish ?signals t

let run_clients ?obs ?signals cfg ~clients =
  let t = create ?obs cfg in
  List.iter
    (fun (fd_in, fd_out) ->
      (* fault-scenario clients are pipes that may never be drained on
         the far side: nonblocking writes + the elastic buffer keep a
         stalled reader from wedging the whole fleet *)
      (try Unix.set_nonblock fd_in with Unix.Unix_error (_, _, _) -> ());
      (try Unix.set_nonblock fd_out with Unix.Unix_error (_, _, _) -> ());
      ignore (add_client t ~owned:false fd_in fd_out))
    clients;
  finish ?signals t

let run_listener ?obs ?signals cfg ~listen_fd ~accepts =
  let t = create ?obs cfg in
  t.listen <- Some listen_fd;
  t.accepts_left <- accepts;
  (* the listener belongs to the caller (it may rebind/reuse it);
     serve only stops accepting *)
  finish ?signals t
