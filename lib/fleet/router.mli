(** The fleet router: [N] real [sofia_cli serve --socket --once] child
    processes behind one single-threaded select loop.

    Jobs shard deterministically by image content hash ({!Shard.route});
    PR 4's supervision machinery — watchdog, crash-restart, circuit
    breaker, graceful drain — is promoted one level up to supervise
    whole processes, which (unlike OCaml domains) can actually be
    killed.

    Children are {e untrusted-but-supervised} (DESIGN §13): the router
    never fabricates a payload, but it renames jobs on the child hop,
    replays deterministic duplicates from a content-keyed cache, and
    audit-samples distinct keys to a second shard, settling
    disagreements by a third-shard majority vote and quarantining the
    liar. The byte-identical payload guarantee of single-process
    [serve] is preserved end to end. *)

type event =
  | Client_response of int
      (** running count of client-visible job responses — the fault
          campaign's "kill a child after K responses" trigger *)
  | Child_up of int * int  (** shard, pid *)
  | Child_down of int * string  (** shard, reason *)

type config = {
  children : int;  (** shard count (>= 1) *)
  workers : int;  (** engine workers per child *)
  queue : int;  (** per-child engine queue capacity *)
  cli : string option;  (** sofia_cli path; [None] = {!Child.find_cli} *)
  socket_dir : string option;  (** [None] = fresh temp dir, removed after *)
  store_dir : string option;  (** parent dir; child [k] gets [shard-k/] *)
  store_budget : int;
  engine : string option;  (** [--engine] forwarded to children *)
  backend : Sofia_transform.Backend_id.t;
      (** fleet-default protection backend (default SOFIA). Forwarded
          to children as [--backend] (omitted when SOFIA, so all-SOFIA
          fleets spawn pre-backend command lines) and used to parse
          client lines that carry no ["backend"] field — router and
          children must agree on the default, or the replay cache
          could alias one backend's payload under the other's key. *)
  default_deadline_ms : int option;
  window : int;  (** max in-flight jobs per child (< child queue) *)
  replay : bool;  (** serve duplicate deterministic jobs from cache *)
  audit_every : int;  (** audit every Nth distinct content key; 0 = off *)
  probe_interval_ms : int;  (** idle-child ping cadence; 0 = off *)
  hang_timeout_ms : int;  (** silence-with-traffic-owed before SIGKILL *)
  breaker_threshold : int;  (** consecutive deaths before quarantine *)
  redispatch_limit : int;  (** child incarnations one job may consume *)
  connect_timeout_s : float;
  child_extra_args : (int -> string list) option;
      (** per-shard extra serve flags (the fault campaign's skew /
          digest-flip / poison-job hooks) *)
  on_event : (event -> unit) option;
}

val default_config : config
(** 3 children, 1 worker each, window 32, replay on, audit every 16th
    distinct key, 250ms probes, 5s hang timeout, breaker at 3. *)

type shard_stats = {
  ss_shard : int;
  mutable ss_routed : int;
  mutable ss_done : int;
  mutable ss_deaths : int;
  mutable ss_restarts : int;
  mutable ss_hangs : int;
  mutable ss_quarantined : bool;
  mutable ss_lat_ms : float list;  (** router-observed, newest first *)
}

type stats = {
  mutable received : int;
  mutable malformed : int;
  mutable submitted : int;
  mutable done_ : int;
  mutable rejected : int;
  mutable timed_out : int;
  mutable failed : int;
  mutable replays : int;  (** answered from the content-keyed cache *)
  mutable coalesced : int;  (** duplicates parked behind an in-flight primary *)
  mutable audits : int;
  mutable digest_conflicts : int;  (** audit votes that caught a disagreement *)
  mutable deaths : int;
  mutable restarts : int;
  mutable hangs : int;
  mutable quarantines : int;
  mutable resheds : int;  (** jobs routed off a quarantined home shard *)
  mutable interrupted : bool;
  shards : shard_stats array;
}

val conserved : stats -> bool
(** [submitted = done + rejected + timed_out + failed] — the fleet-wide
    terminal-counter conservation law. *)

val stats_json : stats -> Sofia_obs.Json.t

val run :
  ?obs:Sofia_obs.Obs.t ->
  ?signals:bool ->
  config ->
  client_in:Unix.file_descr ->
  client_out:Unix.file_descr ->
  stats * Sofia_obs.Json.t
(** Spawn the fleet, serve NDJSON requests from [client_in] to
    [client_out] until client EOF (or, with [signals:true], until
    SIGINT/SIGTERM starts a graceful drain), then stop the children
    ([--once] children drain and exit at EOF; stragglers are killed)
    and return the router stats plus the fleet metrics document
    (router counters, per-shard latency percentiles, and each child's
    own [serve --json] metrics). No child outlives the call.

    @raise Failure when no sofia_cli binary can be located.
    @raise Child.Child_failed when a child never comes up at start. *)
