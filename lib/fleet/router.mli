(** The fleet router: [N] real [sofia_cli serve --socket --once] child
    processes behind one single-threaded select loop.

    Jobs shard deterministically by image content hash ({!Shard.route});
    PR 4's supervision machinery — watchdog, crash-restart, circuit
    breaker, graceful drain — is promoted one level up to supervise
    whole processes, which (unlike OCaml domains) can actually be
    killed. The loop serves any number of concurrent clients (pipes,
    AF_UNIX or TCP accepts) with per-client buffers, so one stalled
    reader never blocks the fleet.

    Children are {e untrusted-but-supervised} (DESIGN §13): the router
    never fabricates a payload, but it renames jobs on the child hop,
    replays deterministic duplicates from a content-keyed cache, and
    audit-samples distinct keys to a second shard, settling
    disagreements by a third-shard majority vote and quarantining the
    liar. The byte-identical payload guarantee of single-process
    [serve] is preserved end to end.

    Survivability (DESIGN §15): crash-restarts are paced by
    exponential backoff with deterministic jitter and bounded by a
    restart budget over a sliding window; breaker quarantines are
    probed back into service after a cooldown (probation: K
    consecutive clean probes re-admit the shard and its traffic
    re-sheds back home), while integrity quarantines are permanent;
    and the replay cache can persist across router restarts through
    the §12 [store_fs] envelope tier with a zero-trust reload. *)

type event =
  | Client_response of int
      (** running count of client-visible job responses — the fault
          campaign's "kill a child after K responses" trigger *)
  | Child_up of int * int  (** shard, pid *)
  | Child_down of int * string  (** shard, reason *)
  | Child_rejoin of int * int
      (** shard re-admitted after probation; second field is the
          shard's primary-dispatch count at that instant, so a
          scenario can assert traffic re-shed back afterwards *)

type config = {
  children : int;  (** shard count (>= 1) *)
  workers : int;  (** engine workers per child *)
  queue : int;  (** per-child engine queue capacity *)
  cli : string option;  (** sofia_cli path; [None] = {!Child.find_cli} *)
  socket_dir : string option;
      (** [None] = fresh temp dir, removed after. A provided dir is
          janitored at startup: probe-dead [shard-*.sock] files, stale
          [metrics-*.json] and [*.tmp] debris from a killed fleet are
          removed; live sockets and plain files are left alone. *)
  store_dir : string option;  (** parent dir; child [k] gets [shard-k/] *)
  store_budget : int;
  engine : string option;  (** [--engine] forwarded to children *)
  backend : Sofia_transform.Backend_id.t;
      (** fleet-default protection backend (default SOFIA). Forwarded
          to children as [--backend] (omitted when SOFIA, so all-SOFIA
          fleets spawn pre-backend command lines) and used to parse
          client lines that carry no ["backend"] field — router and
          children must agree on the default, or the replay cache
          could alias one backend's payload under the other's key. *)
  default_deadline_ms : int option;
  window : int;  (** max in-flight jobs per child (< child queue) *)
  replay : bool;  (** serve duplicate deterministic jobs from cache *)
  audit_every : int;  (** audit every Nth distinct content key; 0 = off *)
  probe_interval_ms : int;  (** idle-child ping cadence; 0 = off *)
  hang_timeout_ms : int;  (** silence-with-traffic-owed before SIGKILL *)
  breaker_threshold : int;  (** consecutive deaths before quarantine *)
  redispatch_limit : int;  (** child incarnations one job may consume *)
  connect_timeout_s : float;
  child_extra_args : (int -> string list) option;
      (** per-shard extra serve flags (the fault campaign's skew /
          digest-flip / poison-job hooks) *)
  on_event : (event -> unit) option;
  replay_dir : string option;
      (** persistent replay-cache directory ({!Sofia_store_fs}); [None]
          (default) keeps the replay cache memory-only. Entries are
          sealed Replay envelopes under the request's own derived keys
          and reloaded zero-trust (envelope checks + re-derived payload
          fingerprint) — a tampered entry is a miss, never served. *)
  rejoin_cooldown_ms : int;
      (** how long a breaker-quarantined shard rests before a probation
          restart; 0 disables rejoin entirely *)
  rejoin_probes : int;
      (** consecutive clean probe responses required to re-admit *)
  restart_backoff_ms : int;  (** base crash-restart delay (doubles per death) *)
  restart_backoff_max_ms : int;  (** backoff cap *)
  restart_budget : int;
      (** restarts allowed per shard within the budget window before
          the shard is quarantined (breaker cause); 0 = unlimited *)
  restart_budget_window_ms : int;
  client_linger_ms : int;
      (** a client whose write buffer stays undrained this long is
          dropped (slow-client isolation); 0 = never *)
}

val default_config : config
(** 3 children, 1 worker each, window 32, replay on, audit every 16th
    distinct key, 250ms probes, 5s hang timeout, breaker at 3.
    Survivability defaults: 25ms base backoff capped at 2s, 6 restarts
    per 10s budget window, 30s rejoin cooldown with 3 clean probes,
    5s slow-client linger, no persistent replay dir. *)

type shard_stats = {
  ss_shard : int;
  mutable ss_routed : int;
  mutable ss_done : int;
  mutable ss_deaths : int;
  mutable ss_restarts : int;
  mutable ss_hangs : int;
  mutable ss_quarantined : bool;
  mutable ss_lat_ms : float list;  (** router-observed, newest first *)
}

type stats = {
  mutable received : int;
  mutable malformed : int;
  mutable submitted : int;
  mutable done_ : int;
  mutable rejected : int;
  mutable timed_out : int;
  mutable failed : int;
  mutable replays : int;  (** answered from the content-keyed cache *)
  mutable coalesced : int;  (** duplicates parked behind an in-flight primary *)
  mutable audits : int;
  mutable digest_conflicts : int;  (** audit votes that caught a disagreement *)
  mutable deaths : int;
  mutable restarts : int;
  mutable hangs : int;
  mutable quarantines : int;
  mutable resheds : int;  (** jobs routed off a quarantined home shard *)
  mutable interrupted : bool;
  mutable backoffs : int;  (** deferred (backoff-paced) restarts scheduled *)
  mutable rejoins : int;  (** shards re-admitted after probation *)
  mutable quar_breaker : int;  (** quarantines eligible for rejoin *)
  mutable quar_integrity : int;  (** permanent quarantines (digest liars) *)
  mutable disk_replays : int;  (** replays served from the persistent tier *)
  mutable slow_client_drops : int;  (** clients dropped by the linger *)
  shards : shard_stats array;
}

val conserved : stats -> bool
(** [submitted = done + rejected + timed_out + failed] — the fleet-wide
    terminal-counter conservation law. *)

val stats_json : stats -> Sofia_obs.Json.t

val run :
  ?obs:Sofia_obs.Obs.t ->
  ?signals:bool ->
  config ->
  client_in:Unix.file_descr ->
  client_out:Unix.file_descr ->
  stats * Sofia_obs.Json.t
(** Spawn the fleet, serve NDJSON requests from [client_in] to
    [client_out] until client EOF (or, with [signals:true], until
    SIGINT/SIGTERM starts a graceful drain), then stop the children
    ([--once] children drain and exit at EOF; stragglers are killed)
    and return the router stats plus the fleet metrics document
    (router counters, per-shard latency percentiles, each child's own
    [serve --json] metrics and, when [replay_dir] is set, the
    persistent replay store's counters). No child outlives the call.

    @raise Failure when no sofia_cli binary can be located.
    @raise Child.Child_failed when a child never comes up at start. *)

val run_clients :
  ?obs:Sofia_obs.Obs.t ->
  ?signals:bool ->
  config ->
  clients:(Unix.file_descr * Unix.file_descr) list ->
  stats * Sofia_obs.Json.t
(** Like {!run} with several concurrent pre-connected clients, each an
    [(in, out)] fd pair served fairly from the same select loop. The
    fds are set nonblocking (a stalled reader buffers, then trips the
    linger) but remain owned by the caller. Returns once every client
    has reached EOF and every admitted job has settled. *)

val run_listener :
  ?obs:Sofia_obs.Obs.t ->
  ?signals:bool ->
  config ->
  listen_fd:Unix.file_descr ->
  accepts:int ->
  stats * Sofia_obs.Json.t
(** Like {!run} but clients arrive by [accept] on [listen_fd] (AF_UNIX
    or TCP — the router does not care), each served concurrently until
    its own EOF. [accepts] bounds how many connections are taken
    (negative = unlimited, until a signal stops the loop); the call
    returns when no more accepts are pending, every connected client
    has finished and all work has settled. The listening fd itself is
    never closed — it belongs to the caller. *)
