(* One fleet child: a real `sofia_cli serve --socket PATH --once`
   process plus the router's single persistent connection to it. The
   router treats the child as untrusted-but-supervised: everything here
   is mechanics (spawn, connect, buffered line I/O, kill, reap); the
   policy — windows, redispatch, breaker, quarantine — lives in
   Router. *)

type proc = {
  shard : int;
  socket_path : string;
  mutable pid : int;  (* -1 when not running *)
  mutable fd : Unix.file_descr option;
  rbuf : Buffer.t;  (* partial-line accumulation between selects *)
}

(* Resolve the sofia_cli binary for spawning children. Callers that ARE
   sofia_cli (the `fleet` command, `campaign`) hit the first case; test
   and bench executables live in the same _build tree, so the relative
   candidates cover them. SOFIA_CLI overrides everything. *)
let find_cli () =
  let exe = Sys.executable_name in
  let dir = Filename.dirname exe in
  let candidates =
    (match Sys.getenv_opt "SOFIA_CLI" with Some p -> [ p ] | None -> [])
    @ (if Filename.basename exe = "sofia_cli.exe" then [ exe ] else [])
    @ [
        Filename.concat dir "sofia_cli.exe";
        Filename.concat dir "../bin/sofia_cli.exe";
        Filename.concat dir "../../bin/sofia_cli.exe";
        "_build/default/bin/sofia_cli.exe";
        "../bin/sofia_cli.exe";
      ]
  in
  List.find_opt
    (fun p -> Sys.file_exists p && not (Sys.is_directory p))
    candidates

let devnull_in () = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0
let devnull_out () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0

(* stdin/stdout are /dev/null (the child serves over its socket; its
   stdout is unused), stderr is inherited so child serve stats and
   crashes stay visible behind the router's own stderr. *)
let spawn ~cli ~args =
  let argv = Array.of_list (cli :: args) in
  let ni = devnull_in () and no = devnull_out () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close ni with Unix.Unix_error _ -> ());
      try Unix.close no with Unix.Unix_error _ -> ())
    (fun () -> Unix.create_process cli argv ni no Unix.stderr)

exception Child_failed of string

let alive pid =
  pid > 0
  &&
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false

(* Connect to the child's socket, polling until it binds. A child that
   exits before binding (bad flag, Bind_error) fails fast instead of
   burning the whole timeout. *)
let connect_with_timeout ~socket_path ~pid ~timeout_s =
  let deadline = Sofia_util.Clock.mono_s () +. timeout_s in
  let rec loop () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if not (alive pid) then
        raise
          (Child_failed
             (Printf.sprintf "shard child (pid %d) exited before binding %s" pid
                socket_path));
      if Sofia_util.Clock.mono_s () > deadline then
        raise
          (Child_failed
             (Printf.sprintf "shard child (pid %d) never bound %s within %.1fs" pid
                socket_path timeout_s));
      Unix.sleepf 0.005;
      loop ()
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  loop ()

let start ~cli ~args ~shard ~socket_path ~connect_timeout_s =
  let pid = spawn ~cli ~args in
  let fd = connect_with_timeout ~socket_path ~pid ~timeout_s:connect_timeout_s in
  { shard; socket_path; pid; fd = Some fd; rbuf = Buffer.create 4096 }

let restart p ~cli ~args ~connect_timeout_s =
  Buffer.clear p.rbuf;
  let pid = spawn ~cli ~args in
  let fd = connect_with_timeout ~socket_path:p.socket_path ~pid ~timeout_s:connect_timeout_s in
  p.pid <- pid;
  p.fd <- Some fd

(* Full blocking write of one NDJSON line; [false] means the connection
   is dead (EPIPE/reset — the caller escalates to death handling). The
   router runs with SIGPIPE ignored. *)
let send_line p line =
  match p.fd with
  | None -> false
  | Some fd -> (
    let data = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length data in
    let rec push off =
      if off >= len then true
      else
        match Unix.write fd data off (len - off) with
        | n -> push (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
    in
    try push 0
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> false)

(* Pull every complete line out of the buffer; keep the partial tail. *)
let take_lines p =
  let s = Buffer.contents p.rbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i ->
    Buffer.clear p.rbuf;
    Buffer.add_substring p.rbuf s (i + 1) (String.length s - i - 1);
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (String.sub s 0 i))

(* After select reported readability: read what is there. [`Eof] covers
   both an orderly close and a died child (its socket end closes with
   it). *)
let drain_input p =
  match p.fd with
  | None -> `Eof
  | Some fd -> (
    let chunk = Bytes.create 65536 in
    match Unix.read fd chunk 0 65536 with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes p.rbuf chunk 0 n;
      `Lines (take_lines p)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Lines []
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
      `Eof)

let close_fd p =
  match p.fd with
  | Some fd ->
    p.fd <- None;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let signal p s = if p.pid > 0 then try Unix.kill p.pid s with Unix.Unix_error _ -> ()

(* Wait for exit up to [timeout_s]; true iff reaped. *)
let reap p ~timeout_s =
  if p.pid <= 0 then true
  else begin
    let deadline = Sofia_util.Clock.mono_s () +. timeout_s in
    let rec loop () =
      match Unix.waitpid [ Unix.WNOHANG ] p.pid with
      | 0, _ ->
        if Sofia_util.Clock.mono_s () > deadline then false
        else begin
          Unix.sleepf 0.005;
          loop ()
        end
      | _ ->
        p.pid <- -1;
        true
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        p.pid <- -1;
        true
    in
    loop ()
  end

(* Hard stop: SIGKILL and reap. Used for hung children (a whole process
   CAN be killed — the one supervision move the in-process watchdog of
   PR 4 never had for domains) and as the escalation when a graceful
   close is not honoured. *)
let kill p =
  close_fd p;
  signal p Sys.sigkill;
  ignore (reap p ~timeout_s:5.0)

(* Graceful stop: close our end; a `--once` child sees EOF, drains and
   exits on its own. Escalate to SIGKILL if it does not. *)
let stop_gently p ~timeout_s =
  close_fd p;
  if not (reap p ~timeout_s) then kill p
