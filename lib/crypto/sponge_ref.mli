(* Independent reference implementation of the SCFP sponge
   permutation; oracle for the diff battery against [Sponge]. *)

val rounds : int
val permute : int64 -> int64

(** Whitebox access for differential tests. *)
module Internal : sig
  val schedule : int64 array
  val round_packed : int64 -> int64 -> int64
  val rotl : int64 -> int -> int64
  val rotr : int64 -> int -> int64
end
