(** Reference RECTANGLE-80: the original straight-line, column-by-column
    implementation, kept verbatim as the differential-testing oracle for
    the optimised {!Rectangle}.

    This module is intentionally boring: it applies the 4-bit S-box one
    column at a time and re-unpacks every subkey per round, exactly as
    the cipher is specified on paper. The fast implementation must agree
    with it on every (key, block) pair — see the differential battery in
    [test/rectangle_diff_tests.ml] — so any optimisation bug shows up as
    a divergence from this module, not as a silent behaviour change. *)

type key
(** An expanded 80-bit key (subkeys precomputed). *)

val rounds : int
(** 25. *)

val key_of_rows : int array -> key
(** [key_of_rows rows] expands a key given as 5 16-bit rows
    (row 0 = least significant).
    @raise Invalid_argument on wrong length or out-of-range rows. *)

val key_of_hex : string -> key
(** 20 hex digits, most-significant first.
    @raise Invalid_argument on malformed input. *)

val key_of_bytes : bytes -> key
(** 10 bytes, big-endian. *)

val random_key : Sofia_util.Prng.t -> key

val key_fingerprint : key -> string
(** Short stable identifier (for logs/tests); not the key material. *)

val encrypt : key -> int64 -> int64
val decrypt : key -> int64 -> int64

val subkeys : key -> int64 array
(** The 26 round subkeys (exposed for unit tests of the schedule). *)

(** Internals exposed for white-box testing. *)
module Internal : sig
  val sbox : int array
  val sbox_inv : int array
  val sub_column : int array -> unit
  (** In-place on a 4-row state. *)

  val inv_sub_column : int array -> unit
  val shift_row : int array -> unit
  val inv_shift_row : int array -> unit
  val rows_of_block : int64 -> int array
  val block_of_rows : int array -> int64
  val round_constants : int array
  (** RC[0..24]. *)
end
