open Sofia_util

let rounds = 25

let sbox = [| 0x6; 0x5; 0xC; 0xA; 0x1; 0xE; 0x7; 0x9; 0xB; 0x0; 0x3; 0xD; 0x8; 0xF; 0x4; 0x2 |]

let sbox_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i s -> inv.(s) <- i) sbox;
  inv

(* Apply a 4-bit S-box to the 16 columns of a 4-row state, row 0
   holding the least-significant bit of each column nibble. *)
let apply_sbox_columns table st =
  let r0 = ref 0 and r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
  for j = 0 to 15 do
    let nib =
      ((st.(0) lsr j) land 1)
      lor (((st.(1) lsr j) land 1) lsl 1)
      lor (((st.(2) lsr j) land 1) lsl 2)
      lor (((st.(3) lsr j) land 1) lsl 3)
    in
    let s = table.(nib) in
    r0 := !r0 lor ((s land 1) lsl j);
    r1 := !r1 lor (((s lsr 1) land 1) lsl j);
    r2 := !r2 lor (((s lsr 2) land 1) lsl j);
    r3 := !r3 lor (((s lsr 3) land 1) lsl j)
  done;
  st.(0) <- !r0;
  st.(1) <- !r1;
  st.(2) <- !r2;
  st.(3) <- !r3

let sub_column st = apply_sbox_columns sbox st
let inv_sub_column st = apply_sbox_columns sbox_inv st

let shift_row st =
  st.(1) <- Word.rotl16 st.(1) 1;
  st.(2) <- Word.rotl16 st.(2) 12;
  st.(3) <- Word.rotl16 st.(3) 13

let inv_shift_row st =
  st.(1) <- Word.rotl16 st.(1) 15;
  st.(2) <- Word.rotl16 st.(2) 4;
  st.(3) <- Word.rotl16 st.(3) 3

let rows_of_block b =
  [| Int64.to_int (Int64.logand b 0xFFFFL);
     Int64.to_int (Int64.logand (Int64.shift_right_logical b 16) 0xFFFFL);
     Int64.to_int (Int64.logand (Int64.shift_right_logical b 32) 0xFFFFL);
     Int64.to_int (Int64.logand (Int64.shift_right_logical b 48) 0xFFFFL) |]

let block_of_rows st =
  Int64.logor
    (Int64.of_int st.(0))
    (Int64.logor
       (Int64.shift_left (Int64.of_int st.(1)) 16)
       (Int64.logor
          (Int64.shift_left (Int64.of_int st.(2)) 32)
          (Int64.shift_left (Int64.of_int st.(3)) 48)))

(* 5-bit LFSR round constants: RC[0] = 0b00001; shift left, feedback
   bit = rc4 xor rc2. *)
let round_constants =
  let rc = Array.make rounds 0 in
  let state = ref 1 in
  for i = 0 to rounds - 1 do
    rc.(i) <- !state;
    let fb = ((!state lsr 4) lxor (!state lsr 2)) land 1 in
    state := ((!state lsl 1) lor fb) land 0x1F
  done;
  rc

type key = { subkeys : int64 array }

(* 80-bit key schedule over a 5x16 key state. *)
let expand rows5 =
  let v = Array.copy rows5 in
  let subkeys = Array.make (rounds + 1) 0L in
  let extract () = block_of_rows [| v.(0); v.(1); v.(2); v.(3) |] in
  for r = 0 to rounds - 1 do
    subkeys.(r) <- extract ();
    (* S-box on the 4 low columns of the 4 low rows. *)
    let low = [| v.(0) land 0xF; v.(1) land 0xF; v.(2) land 0xF; v.(3) land 0xF |] in
    let st = [| low.(0); low.(1); low.(2); low.(3) |] in
    (* reuse the column S-box on a 4-column slice *)
    let r0 = ref 0 and r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
    for j = 0 to 3 do
      let nib =
        ((st.(0) lsr j) land 1)
        lor (((st.(1) lsr j) land 1) lsl 1)
        lor (((st.(2) lsr j) land 1) lsl 2)
        lor (((st.(3) lsr j) land 1) lsl 3)
      in
      let s = sbox.(nib) in
      r0 := !r0 lor ((s land 1) lsl j);
      r1 := !r1 lor (((s lsr 1) land 1) lsl j);
      r2 := !r2 lor (((s lsr 2) land 1) lsl j);
      r3 := !r3 lor (((s lsr 3) land 1) lsl j)
    done;
    v.(0) <- (v.(0) land 0xFFF0) lor !r0;
    v.(1) <- (v.(1) land 0xFFF0) lor !r1;
    v.(2) <- (v.(2) land 0xFFF0) lor !r2;
    v.(3) <- (v.(3) land 0xFFF0) lor !r3;
    (* Generalized Feistel row mix. *)
    let v0 = v.(0) and v1 = v.(1) and v2 = v.(2) and v3 = v.(3) and v4 = v.(4) in
    v.(0) <- Word.rotl16 v0 8 lxor v1;
    v.(1) <- v2;
    v.(2) <- v3;
    v.(3) <- Word.rotl16 v3 12 lxor v4;
    v.(4) <- v0;
    (* Round constant into the low 5 bits of row 0. *)
    v.(0) <- v.(0) lxor round_constants.(r)
  done;
  subkeys.(rounds) <- extract ();
  { subkeys }

let key_of_rows rows =
  if Array.length rows <> 5 then invalid_arg "Rectangle_ref.key_of_rows: need 5 rows";
  Array.iter
    (fun r -> if r < 0 || r > 0xFFFF then invalid_arg "Rectangle_ref.key_of_rows: row out of range")
    rows;
  expand rows

let key_of_bytes b =
  if Bytes.length b <> 10 then invalid_arg "Rectangle_ref.key_of_bytes: need 10 bytes";
  (* big-endian: byte 0 is the most-significant byte of row 4 *)
  let row i =
    (* row 0 = least-significant 16 bits = last two bytes *)
    let hi = Bytes.get_uint8 b (8 - (2 * i)) in
    let lo = Bytes.get_uint8 b (9 - (2 * i)) in
    (hi lsl 8) lor lo
  in
  key_of_rows [| row 0; row 1; row 2; row 3; row 4 |]

let key_of_hex s =
  if String.length s <> 20 then invalid_arg "Rectangle_ref.key_of_hex: need 20 hex digits";
  let b = Bytes.create 10 in
  for i = 0 to 9 do
    let byte = int_of_string ("0x" ^ String.sub s (2 * i) 2) in
    Bytes.set_uint8 b i byte
  done;
  key_of_bytes b

let random_key rng =
  key_of_rows (Array.init 5 (fun _ -> Prng.next32 rng land 0xFFFF))

let key_fingerprint k =
  (* hash of the first and last subkeys; stable and key-dependent but
     does not reveal the schedule *)
  let mix = Int64.logxor k.subkeys.(0) (Int64.mul k.subkeys.(rounds) 0x9E3779B97F4A7C15L) in
  Printf.sprintf "%08Lx" (Int64.logand mix 0xFFFF_FFFFL)

let subkeys k = Array.copy k.subkeys

let encrypt k block =
  let st = rows_of_block block in
  let add_key r =
    let kr = rows_of_block k.subkeys.(r) in
    st.(0) <- st.(0) lxor kr.(0);
    st.(1) <- st.(1) lxor kr.(1);
    st.(2) <- st.(2) lxor kr.(2);
    st.(3) <- st.(3) lxor kr.(3)
  in
  for r = 0 to rounds - 1 do
    add_key r;
    sub_column st;
    shift_row st
  done;
  add_key rounds;
  block_of_rows st

let decrypt k block =
  let st = rows_of_block block in
  let add_key r =
    let kr = rows_of_block k.subkeys.(r) in
    st.(0) <- st.(0) lxor kr.(0);
    st.(1) <- st.(1) lxor kr.(1);
    st.(2) <- st.(2) lxor kr.(2);
    st.(3) <- st.(3) lxor kr.(3)
  in
  add_key rounds;
  for r = rounds - 1 downto 0 do
    inv_shift_row st;
    inv_sub_column st;
    add_key r
  done;
  block_of_rows st

module Internal = struct
  let sbox = sbox
  let sbox_inv = sbox_inv
  let sub_column = sub_column
  let inv_sub_column = inv_sub_column
  let shift_row = shift_row
  let inv_shift_row = inv_shift_row
  let rows_of_block = rows_of_block
  let block_of_rows = block_of_rows
  let round_constants = round_constants
end
