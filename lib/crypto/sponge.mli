(* 64-bit ARX sponge permutation used by the SCFP protection backend.

   Public (unkeyed) permutation over one 64-bit word: the low 32 bits
   are the sponge rate, the high 32 bits the capacity. Secrecy lives
   entirely in the keyed initial state derived by the transform layer.
   [Sponge_ref] is an independently written oracle for the diff
   battery; test/vectors/sponge_kat.txt pins the exact map. *)

val rounds : int
(** Number of ARX rounds (12). *)

val permute : int64 -> int64
(** The permutation P. *)

val rate : int64 -> int
(** Low 32 bits of the state — the keystream for one instruction
    word. *)

val mix : int64 -> int64 -> int64
(** [mix s m] = [permute (s lxor m)] — inject a 64-bit value (address
    pack, domain-separation constant) and permute. *)

val absorb : int64 -> int -> int64
(** [absorb s w] = [mix s (zext32 w)] — duplex one 32-bit ciphertext
    word into the state. *)

(** Whitebox access for differential tests (mirrors
    {!Rectangle.Internal}). *)
module Internal : sig
  val round_constants : int array
  val round : int -> int * int -> int * int
  val halves_of_state : int64 -> int * int
  val state_of_halves : int * int -> int64
end
