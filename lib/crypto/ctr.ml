open Sofia_util

let counter ~nonce ~prev_pc ~pc =
  if nonce < 0 || nonce > 0xFF then invalid_arg "Ctr.counter: nonce must be 8-bit";
  let widx name a =
    if a < 0 || a mod 4 <> 0 || a / 4 >= 1 lsl 28 then
      invalid_arg (Printf.sprintf "Ctr.counter: bad %s address 0x%x" name a);
    a / 4
  in
  let p = widx "prev_pc" prev_pc and c = widx "pc" pc in
  Int64.logor
    (Int64.shift_left (Int64.of_int nonce) 56)
    (Int64.logor (Int64.shift_left (Int64.of_int p) 28) (Int64.of_int c))

let keystream32 ?probe key ~nonce ~prev_pc ~pc =
  (match probe with Some f -> f () | None -> ());
  let o = Rectangle.encrypt key (counter ~nonce ~prev_pc ~pc) in
  Int64.to_int (Int64.logand o 0xFFFF_FFFFL)

let crypt_word ?probe key ~nonce ~prev_pc ~pc w =
  Word.u32 (w lxor keystream32 ?probe key ~nonce ~prev_pc ~pc)
