open Sofia_util

let widx name a =
  if a < 0 || a mod 4 <> 0 || a / 4 >= 1 lsl 28 then
    invalid_arg (Printf.sprintf "Ctr.counter: bad %s address 0x%x" name a);
  a / 4

let counter ~nonce ~prev_pc ~pc =
  if nonce < 0 || nonce > 0xFF then invalid_arg "Ctr.counter: nonce must be 8-bit";
  let p = widx "prev_pc" prev_pc and c = widx "pc" pc in
  Int64.logor
    (Int64.shift_left (Int64.of_int nonce) 56)
    (Int64.logor (Int64.shift_left (Int64.of_int p) 28) (Int64.of_int c))

module Cache = struct
  type t = {
    (* direct-mapped, hardware-style: one slot per index, overwrite on
       collision. The 64-bit edge identity {ω ‖ prevPC/4 ‖ PC/4} does
       not fit one tagged OCaml int, so it is split over two parallel
       tag arrays; [tag2 = -1] marks an empty slot. *)
    tag1 : int array;  (* ω(8) ‖ PC/4 (28) *)
    tag2 : int array;  (* prevPC/4 (28) *)
    data : int array;  (* cached 32-bit keystream word *)
    mask : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?(slots = 1024) () =
    if slots <= 0 then invalid_arg "Ctr.Cache.create: slots must be positive";
    let n = ref 1 in
    while !n < slots do
      n := !n * 2
    done;
    let n = !n in
    {
      tag1 = Array.make n 0;
      tag2 = Array.make n (-1);
      data = Array.make n 0;
      mask = n - 1;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let slots t = Array.length t.data
  let hits t = t.hits
  let misses t = t.misses
  let evictions t = t.evictions

  let reset t =
    Array.fill t.tag1 0 (Array.length t.tag1) 0;
    Array.fill t.tag2 0 (Array.length t.tag2) (-1);
    Array.fill t.data 0 (Array.length t.data) 0;
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0

  let[@inline] index t tag1 tag2 = ((tag1 * 0x9E3779B1) lxor (tag2 * 0x85EBCA77)) land t.mask
end

let[@inline] generate ?probe key ctr =
  (match probe with Some f -> f () | None -> ());
  Int64.to_int (Int64.logand (Rectangle.encrypt key ctr) 0xFFFF_FFFFL)

let keystream32 ?probe ?cache key ~nonce ~prev_pc ~pc =
  match cache with
  | None -> generate ?probe key (counter ~nonce ~prev_pc ~pc)
  | Some c ->
    if nonce < 0 || nonce > 0xFF then invalid_arg "Ctr.counter: nonce must be 8-bit";
    let p = widx "prev_pc" prev_pc and w = widx "pc" pc in
    let tag1 = (nonce lsl 28) lor w and tag2 = p in
    let i = Cache.index c tag1 tag2 in
    if c.Cache.tag1.(i) = tag1 && c.Cache.tag2.(i) = tag2 then begin
      c.Cache.hits <- c.Cache.hits + 1;
      c.Cache.data.(i)
    end
    else begin
      c.Cache.misses <- c.Cache.misses + 1;
      if c.Cache.tag2.(i) >= 0 then c.Cache.evictions <- c.Cache.evictions + 1;
      let ks =
        generate ?probe key
          (Int64.logor
             (Int64.shift_left (Int64.of_int nonce) 56)
             (Int64.logor (Int64.shift_left (Int64.of_int p) 28) (Int64.of_int w)))
      in
      c.Cache.tag1.(i) <- tag1;
      c.Cache.tag2.(i) <- tag2;
      c.Cache.data.(i) <- ks;
      ks
    end

let crypt_word ?probe ?cache key ~nonce ~prev_pc ~pc w =
  Word.u32 (w lxor keystream32 ?probe ?cache key ~nonce ~prev_pc ~pc)
