open Sofia_util

let rounds = 25

let sbox = [| 0x6; 0x5; 0xC; 0xA; 0x1; 0xE; 0x7; 0x9; 0xB; 0x0; 0x3; 0xD; 0x8; 0xF; 0x4; 0x2 |]

let sbox_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i s -> inv.(s) <- i) sbox;
  inv

(* --------------------------------------------------------------- *)
(* Bitsliced S-layer                                                *)
(* --------------------------------------------------------------- *)

(* The S-box applied to all 16 columns at once as boolean operations
   on the four 16-bit rows — the 12-instruction circuit from the
   RECTANGLE paper (ePrint 2014/084, §"bit-slice implementation").
   Inputs a0..a3 are rows 0..3 (row 0 = least-significant bit of each
   column nibble); outputs likewise. The circuit is pinned against the
   table both by the KAT replay and by the structural test that checks
   it against [sbox] on all 16 single-column values. *)
let[@inline] sub_bits a0 a1 a2 a3 =
  let t1 = a1 lxor 0xFFFF in
  let t2 = a0 land t1 in
  let t3 = a2 lxor a3 in
  let b0 = t2 lxor t3 in
  let t5 = a3 lor t1 in
  let t6 = a0 lxor t5 in
  let b1 = a2 lxor t6 in
  let t8 = a1 lxor a2 in
  let b3 = t8 lxor (t3 land t6) in
  let b2 = t6 lxor (b0 lor t8) in
  (b0, b1, b2, b3)

(* Inverse S-box as its algebraic normal form (Möbius transform of
   [sbox_inv]); only the decrypt direction uses it, which is off the
   hot path (the SOFIA pipeline and the MAC only ever encrypt). *)
let[@inline] inv_sub_bits a0 a1 a2 a3 =
  let a01 = a0 land a1 and a02 = a0 land a2 and a03 = a0 land a3 in
  let a12 = a1 land a2 and a13 = a1 land a3 and a23 = a2 land a3 in
  let b0 = 0xFFFF lxor a0 lxor a2 lxor (a01 land a2) lxor a3 lxor a13 lxor a23 in
  let b1 = a1 lxor a2 lxor a02 lxor a03 in
  let b2 = a0 lxor a1 lxor a2 lxor a3 lxor a03 in
  let b3 = 0xFFFF lxor a0 lxor a01 lxor a12 lxor a13 lxor (a01 land a3) lxor a23 in
  (b0, b1, b2, b3)

let apply_bits f st =
  let r0, r1, r2, r3 = f st.(0) st.(1) st.(2) st.(3) in
  st.(0) <- r0;
  st.(1) <- r1;
  st.(2) <- r2;
  st.(3) <- r3

let sub_column st = apply_bits sub_bits st
let inv_sub_column st = apply_bits inv_sub_bits st

let shift_row st =
  st.(1) <- Word.rotl16 st.(1) 1;
  st.(2) <- Word.rotl16 st.(2) 12;
  st.(3) <- Word.rotl16 st.(3) 13

let inv_shift_row st =
  st.(1) <- Word.rotl16 st.(1) 15;
  st.(2) <- Word.rotl16 st.(2) 4;
  st.(3) <- Word.rotl16 st.(3) 3

let rows_of_block b =
  [| Int64.to_int (Int64.logand b 0xFFFFL);
     Int64.to_int (Int64.logand (Int64.shift_right_logical b 16) 0xFFFFL);
     Int64.to_int (Int64.logand (Int64.shift_right_logical b 32) 0xFFFFL);
     Int64.to_int (Int64.logand (Int64.shift_right_logical b 48) 0xFFFFL) |]

let block_of_rows st =
  Int64.logor
    (Int64.of_int st.(0))
    (Int64.logor
       (Int64.shift_left (Int64.of_int st.(1)) 16)
       (Int64.logor
          (Int64.shift_left (Int64.of_int st.(2)) 32)
          (Int64.shift_left (Int64.of_int st.(3)) 48)))

(* 5-bit LFSR round constants: RC[0] = 0b00001; shift left, feedback
   bit = rc4 xor rc2. *)
let round_constants =
  let rc = Array.make rounds 0 in
  let state = ref 1 in
  for i = 0 to rounds - 1 do
    rc.(i) <- !state;
    let fb = ((!state lsr 4) lxor (!state lsr 2)) land 1 in
    state := ((!state lsl 1) lor fb) land 0x1F
  done;
  rc

type key = {
  subkeys : int64 array;
  (* the same 26 subkeys pre-split into rows, flat: rk.(4*r + i) is
     row i of subkey r — so the round loop never unpacks an int64 *)
  rk : int array;
}

(* 80-bit key schedule over a 5x16 key state. *)
let expand rows5 =
  let v = Array.copy rows5 in
  let subkeys = Array.make (rounds + 1) 0L in
  let extract () = block_of_rows [| v.(0); v.(1); v.(2); v.(3) |] in
  for r = 0 to rounds - 1 do
    subkeys.(r) <- extract ();
    (* S-box on the 4 low columns of the 4 low rows: the bitsliced
       circuit on the low nibbles, high 12 bits kept *)
    let s0, s1, s2, s3 = sub_bits (v.(0) land 0xF) (v.(1) land 0xF) (v.(2) land 0xF) (v.(3) land 0xF) in
    v.(0) <- (v.(0) land 0xFFF0) lor (s0 land 0xF);
    v.(1) <- (v.(1) land 0xFFF0) lor (s1 land 0xF);
    v.(2) <- (v.(2) land 0xFFF0) lor (s2 land 0xF);
    v.(3) <- (v.(3) land 0xFFF0) lor (s3 land 0xF);
    (* Generalized Feistel row mix. *)
    let v0 = v.(0) and v1 = v.(1) and v2 = v.(2) and v3 = v.(3) and v4 = v.(4) in
    v.(0) <- Word.rotl16 v0 8 lxor v1;
    v.(1) <- v2;
    v.(2) <- v3;
    v.(3) <- Word.rotl16 v3 12 lxor v4;
    v.(4) <- v0;
    (* Round constant into the low 5 bits of row 0. *)
    v.(0) <- v.(0) lxor round_constants.(r)
  done;
  subkeys.(rounds) <- extract ();
  let rk = Array.make (4 * (rounds + 1)) 0 in
  Array.iteri
    (fun r sk ->
      let rows = rows_of_block sk in
      rk.(4 * r) <- rows.(0);
      rk.((4 * r) + 1) <- rows.(1);
      rk.((4 * r) + 2) <- rows.(2);
      rk.((4 * r) + 3) <- rows.(3))
    subkeys;
  { subkeys; rk }

let key_of_rows rows =
  if Array.length rows <> 5 then invalid_arg "Rectangle.key_of_rows: need 5 rows";
  Array.iter
    (fun r -> if r < 0 || r > 0xFFFF then invalid_arg "Rectangle.key_of_rows: row out of range")
    rows;
  expand rows

let key_of_bytes b =
  if Bytes.length b <> 10 then invalid_arg "Rectangle.key_of_bytes: need 10 bytes";
  (* big-endian: byte 0 is the most-significant byte of row 4 *)
  let row i =
    (* row 0 = least-significant 16 bits = last two bytes *)
    let hi = Bytes.get_uint8 b (8 - (2 * i)) in
    let lo = Bytes.get_uint8 b (9 - (2 * i)) in
    (hi lsl 8) lor lo
  in
  key_of_rows [| row 0; row 1; row 2; row 3; row 4 |]

let key_of_hex s =
  if String.length s <> 20 then invalid_arg "Rectangle.key_of_hex: need 20 hex digits";
  let b = Bytes.create 10 in
  for i = 0 to 9 do
    let byte = int_of_string ("0x" ^ String.sub s (2 * i) 2) in
    Bytes.set_uint8 b i byte
  done;
  key_of_bytes b

let random_key rng =
  key_of_rows (Array.init 5 (fun _ -> Prng.next32 rng land 0xFFFF))

let key_fingerprint k =
  (* hash of the first and last subkeys; stable and key-dependent but
     does not reveal the schedule *)
  let mix = Int64.logxor k.subkeys.(0) (Int64.mul k.subkeys.(rounds) 0x9E3779B97F4A7C15L) in
  Printf.sprintf "%08Lx" (Int64.logand mix 0xFFFF_FFFFL)

let subkeys k = Array.copy k.subkeys

(* The round loop works on four 16-bit rows held in locals; the only
   allocation per call is the boxed int64 result. *)
let encrypt k block =
  let rk = k.rk in
  let b = Int64.to_int (Int64.logand block 0xFFFF_FFFF_FFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical block 48) in
  let r0 = ref (b land 0xFFFF)
  and r1 = ref ((b lsr 16) land 0xFFFF)
  and r2 = ref ((b lsr 32) land 0xFFFF)
  and r3 = ref hi in
  for r = 0 to rounds - 1 do
    let i = 4 * r in
    let a0 = !r0 lxor rk.(i)
    and a1 = !r1 lxor rk.(i + 1)
    and a2 = !r2 lxor rk.(i + 2)
    and a3 = !r3 lxor rk.(i + 3) in
    let b0, b1, b2, b3 = sub_bits a0 a1 a2 a3 in
    r0 := b0 land 0xFFFF;
    r1 := ((b1 lsl 1) lor (b1 lsr 15)) land 0xFFFF;
    r2 := ((b2 lsl 12) lor (b2 lsr 4)) land 0xFFFF;
    r3 := ((b3 lsl 13) lor (b3 lsr 3)) land 0xFFFF
  done;
  let i = 4 * rounds in
  let f0 = !r0 lxor rk.(i)
  and f1 = !r1 lxor rk.(i + 1)
  and f2 = !r2 lxor rk.(i + 2)
  and f3 = !r3 lxor rk.(i + 3) in
  Int64.logor
    (Int64.of_int (f0 lor (f1 lsl 16) lor (f2 lsl 32)))
    (Int64.shift_left (Int64.of_int f3) 48)

let decrypt k block =
  let rk = k.rk in
  let b = Int64.to_int (Int64.logand block 0xFFFF_FFFF_FFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical block 48) in
  let i = 4 * rounds in
  let r0 = ref ((b land 0xFFFF) lxor rk.(i))
  and r1 = ref (((b lsr 16) land 0xFFFF) lxor rk.(i + 1))
  and r2 = ref (((b lsr 32) land 0xFFFF) lxor rk.(i + 2))
  and r3 = ref (hi lxor rk.(i + 3)) in
  for r = rounds - 1 downto 0 do
    (* inverse ShiftRow: rotations by 0, 15, 4, 3 *)
    let a0 = !r0
    and a1 = ((!r1 lsr 1) lor (!r1 lsl 15)) land 0xFFFF
    and a2 = ((!r2 lsr 12) lor (!r2 lsl 4)) land 0xFFFF
    and a3 = ((!r3 lsr 13) lor (!r3 lsl 3)) land 0xFFFF in
    let b0, b1, b2, b3 = inv_sub_bits a0 a1 a2 a3 in
    let i = 4 * r in
    r0 := (b0 land 0xFFFF) lxor rk.(i);
    r1 := (b1 land 0xFFFF) lxor rk.(i + 1);
    r2 := (b2 land 0xFFFF) lxor rk.(i + 2);
    r3 := (b3 land 0xFFFF) lxor rk.(i + 3)
  done;
  Int64.logor
    (Int64.of_int (!r0 lor (!r1 lsl 16) lor (!r2 lsl 32)))
    (Int64.shift_left (Int64.of_int !r3) 48)

module Internal = struct
  let sbox = sbox
  let sbox_inv = sbox_inv
  let sub_column = sub_column
  let inv_sub_column = inv_sub_column
  let shift_row = shift_row
  let inv_shift_row = inv_shift_row
  let rows_of_block = rows_of_block
  let block_of_rows = block_of_rows
  let round_constants = round_constants
end
