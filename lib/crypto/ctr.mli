(** Control-flow-dependent CTR-mode instruction encryption (paper
    §II-A, Alg. 1).

    The counter for an instruction at address [pc] reached from the
    instruction at address [prev_pc] is the 64-bit block

    {v I = ω(8) ‖ prevPC/4 (28) ‖ PC/4 (28) v}

    (word indices; the paper writes [{ω ‖ prevPC ‖ PC}] without fixing
    a packing — any injective packing preserves the argument). The
    keystream is [E_k1(I)] and the instruction word is XORed with its
    [r = 32] least-significant bits:
    [cinst = Ek1(I) ⊕ inst], [inst' = Ek1(I) ⊕ cinst]. *)

val counter : nonce:int -> prev_pc:int -> pc:int -> int64
(** Build the counter block. [nonce] is the 8-bit program nonce ω;
    addresses must be word-aligned and below 2^30.
    @raise Invalid_argument otherwise. *)

(** Bounded per-edge keystream cache.

    The keystream word of an edge is a pure function of
    [{ω, prevPC, PC}] and the key, so a decrypt frontend may remember
    it — the model of a small keystream memory next to the cipher
    core. The cache is direct-mapped and fixed-size: a colliding edge
    overwrites (evicts) the previous occupant, so memory is bounded
    whatever the working set.

    A cache instance memoises keystream words of exactly one [k1]; it
    must never be shared across keys (the tag does not include the key,
    as the hardware register file it models is per-device). Cached
    words may also only be as trustworthy as their consumer's
    verification: SOFIA stays sound because the cache stores the
    {e keystream}, never the decrypted plaintext — a tampered
    ciphertext word XORed with a (correct, possibly cached) keystream
    still garbles, and the block MAC still fails. *)
module Cache : sig
  type t

  val create : ?slots:int -> unit -> t
  (** [create ~slots ()] makes an empty cache with at least [slots]
      entries (rounded up to a power of two; default 1024).
      @raise Invalid_argument if [slots <= 0]. *)

  val slots : t -> int

  val hits : t -> int

  val misses : t -> int

  val evictions : t -> int
  (** Misses that displaced a live entry (bounded-capacity pressure). *)

  val reset : t -> unit
  (** Empty the cache and zero the counters. *)
end

val keystream32 :
  ?probe:(unit -> unit) ->
  ?cache:Cache.t ->
  Rectangle.key ->
  nonce:int ->
  prev_pc:int ->
  pc:int ->
  int
(** Low 32 bits of [E_k1(counter)]. [probe] (observability hook) is
    called once per keystream word {e generated} — the unit the decrypt
    pipeline's throughput is measured in; absent by default and free
    when absent. With [cache], a hit returns the remembered word
    without invoking the cipher (so [probe] does not fire); argument
    validation is identical either way. *)

val crypt_word :
  ?probe:(unit -> unit) ->
  ?cache:Cache.t ->
  Rectangle.key ->
  nonce:int ->
  prev_pc:int ->
  pc:int ->
  int ->
  int
(** XOR a 32-bit word with the keystream; its own inverse, so it both
    encrypts and decrypts. *)
