(** Control-flow-dependent CTR-mode instruction encryption (paper
    §II-A, Alg. 1).

    The counter for an instruction at address [pc] reached from the
    instruction at address [prev_pc] is the 64-bit block

    {v I = ω(8) ‖ prevPC/4 (28) ‖ PC/4 (28) v}

    (word indices; the paper writes [{ω ‖ prevPC ‖ PC}] without fixing
    a packing — any injective packing preserves the argument). The
    keystream is [E_k1(I)] and the instruction word is XORed with its
    [r = 32] least-significant bits:
    [cinst = Ek1(I) ⊕ inst], [inst' = Ek1(I) ⊕ cinst]. *)

val counter : nonce:int -> prev_pc:int -> pc:int -> int64
(** Build the counter block. [nonce] is the 8-bit program nonce ω;
    addresses must be word-aligned and below 2^30.
    @raise Invalid_argument otherwise. *)

val keystream32 : ?probe:(unit -> unit) -> Rectangle.key -> nonce:int -> prev_pc:int -> pc:int -> int
(** Low 32 bits of [E_k1(counter)]. [probe] (observability hook) is
    called once per keystream word generated — the unit the decrypt
    pipeline's throughput is measured in; absent by default and free
    when absent. *)

val crypt_word :
  ?probe:(unit -> unit) -> Rectangle.key -> nonce:int -> prev_pc:int -> pc:int -> int -> int
(** XOR a 32-bit word with the keystream; its own inverse, so it both
    encrypts and decrypts. *)
