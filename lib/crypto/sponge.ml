(* 64-bit ARX sponge permutation for the SCFP protection backend.

   The SCFP mode (Werner et al., "Sponge-Based Control-Flow Protection
   for IoT Devices") keeps a rolling sponge state in the fetch stage:
   the low 32 bits are the rate (keystream for one instruction word),
   the high 32 bits the capacity. Decrypt-and-absorb duplexing means
   the state after a block is a function of every ciphertext word that
   entered it, so a per-block tag comparison *is* the code-integrity
   and CFI check — no separate MAC chain.

   The permutation is a 12-round Speck-like ARX map over two 32-bit
   halves with SHA-256-style round constants (fractional bits of the
   cube roots of the first primes — nothing-up-my-sleeve). It is a
   public permutation: all secrecy comes from the keyed initial state
   (see Scfp in lib/transform), so invertibility is irrelevant and no
   key schedule exists.

   This is the production implementation: unboxed native-int halves,
   Int64 only at the boundary. [Sponge_ref] is the independently
   written oracle; the diff battery and the pinned KAT file
   (test/vectors/sponge_kat.txt) hold the two to the same function. *)

let rounds = 12

(* fractional parts of cbrt(2..37), as in SHA-256's K table *)
let round_constants =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
  |]

let mask32 = 0xFFFF_FFFF
let rotl32 x n = (x lsl n) lor (x lsr (32 - n)) land mask32
let rotr32 x n = (x lsr n) lor ((x lsl (32 - n)) land mask32)

(* one Speck-like round: add-rotate-xor with a round constant in place
   of a round key *)
let round r (a, b) =
  let a = (rotr32 a 8 + b) land mask32 lxor round_constants.(r) in
  let b = rotl32 b 3 lxor a in
  (a, b)

let halves_of_state s =
  (Int64.to_int (Int64.shift_right_logical s 32), Int64.to_int s land mask32)

let state_of_halves (a, b) =
  Int64.logor (Int64.shift_left (Int64.of_int a) 32) (Int64.of_int b)

let permute s =
  let a = ref (Int64.to_int (Int64.shift_right_logical s 32)) in
  let b = ref (Int64.to_int s land mask32) in
  for r = 0 to rounds - 1 do
    let a' = (rotr32 !a 8 + !b) land mask32 lxor round_constants.(r) in
    b := rotl32 !b 3 lxor a';
    a := a'
  done;
  state_of_halves (!a, !b)

let rate s = Int64.to_int s land mask32
let mix s m = permute (Int64.logxor s m)
let absorb s w = mix s (Int64.of_int (w land mask32))

module Internal = struct
  let round_constants = round_constants
  let round = round
  let halves_of_state = halves_of_state
  let state_of_halves = state_of_halves
end
