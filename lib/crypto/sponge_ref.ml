(* Reference implementation of the SCFP sponge permutation.

   Same map as [Sponge.permute], written independently in a different
   style so the two can cross-check each other: everything here is
   plain Int64 arithmetic on the packed 64-bit state (no native-int
   halves, no mutation), with the round expressed as a fold over the
   constant schedule. Deliberately shares no code with sponge.ml —
   the constants are re-derived literals and the rotates are Int64
   ops. Used by the sponge diff battery and the pinned KAT replay
   (test/vectors/sponge_kat.txt). *)

let rounds = 12

(* SHA-256 K[0..11]: fractional bits of cbrt of the first 12 primes *)
let schedule =
  [|
    0x428a2f98L; 0x71374491L; 0xb5c0fbcfL; 0xe9b5dba5L;
    0x3956c25bL; 0x59f111f1L; 0x923f82a4L; 0xab1c5ed5L;
    0xd807aa98L; 0x12835b01L; 0x243185beL; 0x550c7dc3L;
  |]

let lo32 = 0xFFFF_FFFFL
let hi s = Int64.shift_right_logical s 32
let lo s = Int64.logand s lo32

let rotl w n =
  Int64.logand lo32
    (Int64.logor (Int64.shift_left w n) (Int64.shift_right_logical w (32 - n)))

let rotr w n = rotl w (32 - n)

(* one round on the packed state: hi half is the add-rotate lane, lo
   half the xor-rotate lane *)
let round_packed rc s =
  let a = hi s and b = lo s in
  let a = Int64.logxor (Int64.logand (Int64.add (rotr a 8) b) lo32) rc in
  let b = Int64.logxor (rotl b 3) a in
  Int64.logor (Int64.shift_left a 32) b

let permute s = Array.fold_left (fun s rc -> round_packed rc s) s schedule

module Internal = struct
  let schedule = schedule
  let round_packed = round_packed
  let rotl = rotl
  let rotr = rotr
end
