module Image = Sofia_transform.Image
module Block = Sofia_transform.Block

type clazz =
  | Insn_flip
  | Mac_flip
  | Keystream
  | Edge_redirect
  | Mux_swap
  | Fetch_transient

let all = [ Insn_flip; Mac_flip; Keystream; Edge_redirect; Mux_swap; Fetch_transient ]

(* The paper's detection guarantee (any tampered word an execution
   actually consumes, any CFG edge outside the static graph) covers the
   first five classes. Transient fetch-path glitches are the threat the
   paper's conclusion explicitly defers: a flip landing in a
   multiplexor block's *unused* M1 copy is never MAC-checked by the
   taken path, so detection is expected-high but not guaranteed. *)
let in_model = function
  | Insn_flip | Mac_flip | Keystream | Edge_redirect | Mux_swap -> true
  | Fetch_transient -> false

(* Whether a class has any site to sample under a backend. SCFP builds
   no multiplexor blocks — every join re-keys the sponge instead of
   funnelling through a mux tree — so [Mux_swap] is structurally
   inapplicable there: reported as not-applicable, never as a skip and
   never as an escape. *)
let applicable clazz (backend : Sofia_transform.Backend_id.t) =
  match (clazz, backend) with
  | Mux_swap, Sofia_transform.Backend_id.Scfp -> false
  | _ -> true

let name = function
  | Insn_flip -> "insn_flip"
  | Mac_flip -> "mac_flip"
  | Keystream -> "keystream"
  | Edge_redirect -> "edge_redirect"
  | Mux_swap -> "mux_swap"
  | Fetch_transient -> "fetch_transient"

let of_name = function
  | "insn_flip" -> Some Insn_flip
  | "mac_flip" -> Some Mac_flip
  | "keystream" -> Some Keystream
  | "edge_redirect" -> Some Edge_redirect
  | "mux_swap" -> Some Mux_swap
  | "fetch_transient" -> Some Fetch_transient
  | _ -> None

let describe = function
  | Insn_flip -> "single-bit flip in a visited block's instruction word"
  | Mac_flip -> "single-bit flip in a visited block's stored MAC word"
  | Keystream -> "random 32-bit XOR mask on a consumed word (corrupted keystream)"
  | Edge_redirect -> "control transfer along an edge outside the static CFG"
  | Mux_swap -> "swap of a multiplexor block's two encrypted M1 copies"
  | Fetch_transient -> "transient bit flip on one fetch of the 256-bit block group"

type site =
  | Word_xor of { address : int; mask : int }
  | Word_swap of { a : int; b : int }
  | Redirect of { from_exit : int; target : int }
  | Transient of { fetch : int; bit : int }

let pp_site fmt = function
  | Word_xor { address; mask } ->
    Format.fprintf fmt "word-xor   addr=0x%08x mask=0x%08x" address mask
  | Word_swap { a; b } -> Format.fprintf fmt "word-swap  0x%08x <-> 0x%08x" a b
  | Redirect { from_exit; target } ->
    Format.fprintf fmt "redirect   0x%08x -> 0x%08x" from_exit target
  | Transient { fetch; bit } -> Format.fprintf fmt "transient  fetch=%d bit=%d" fetch bit

(* Materialise an image-tamper site. [Redirect]/[Transient] leave the
   stored image untouched — the campaign injects them through the
   frontend query / the runner's fault hook instead. *)
let apply image = function
  | Word_xor { address; mask } -> (
    match Image.fetch image address with
    | Some w -> Image.with_tampered_word image ~address ~value:(w lxor mask land 0xFFFFFFFF)
    | None -> invalid_arg "Site.apply: address outside text")
  | Word_swap { a; b } -> (
    match (Image.fetch image a, Image.fetch image b) with
    | Some wa, Some wb ->
      Image.with_tampered_word
        (Image.with_tampered_word image ~address:a ~value:wb)
        ~address:b ~value:wa
    | _ -> invalid_arg "Site.apply: swap address outside text")
  | Redirect _ | Transient _ -> image
