(** The fault-injection campaign: a deterministic, seeded sweep of
    (fault class × workload × trial) over the whole pipeline, plus seven
    scripted service-level fault scenarios, producing the
    detection-coverage matrix that CI gates on.

    {b Method.} For each workload the campaign first runs a bounded
    {e clean} execution and profiles it: which blocks retired
    instructions, which of them are multiplexor blocks, how many block
    fetches happened, and the static legitimate-edge set. Fault sites
    are then sampled (from one {!Sofia_util.Prng} stream seeded by the
    campaign seed, so the whole matrix is reproducible from [--seed])
    only against that consumed state — a fault parked in dead code
    would be undetectable {e and} harmless, and counting it as a trial
    would launder the coverage number.

    {b Verdicts} compare the faulted run against the clean one:
    [Detected] (CPU reset fired), [Masked] (identical outcome and
    outputs), [Corrupted] (ran to completion with wrong results),
    [Hung] (fuel exhausted). For every detection the {e latency} is
    measured from the run's trace — retired instructions between the
    fetch that consumed the fault and the reset. SOFIA verifies the
    MAC before the Memory-Access stage, so in-model latency must be 0.

    {b The gate.} {!in_model_escapes} counts Masked + Corrupted + Hung
    over the in-model classes ({!Site.in_model}); the acceptance
    criterion (CI, [sofia campaign]) is exactly 0 escapes plus every
    {!service_check} passing. [Fetch_transient] rates are reported but
    never gated. *)

type verdict = Detected | Masked | Corrupted | Hung

val verdict_name : verdict -> string

(** One (backend × class × workload) cell of the coverage matrix.
    [trials] may be less than the requested trial count when the class
    has no applicable site in the workload (e.g. [Mux_swap] with no
    multiplexor block on the executed path) — recorded as skipped
    trials, never as escapes. [applicable] is [false] when the class
    is structurally absent under the backend ({!Site.applicable},
    e.g. [Mux_swap] under SCFP): the cell is kept with zero trials so
    the matrix stays rectangular across backends. *)
type cell = {
  clazz : Site.clazz;
  backend : Sofia_transform.Backend_id.t;
  workload : string;
  applicable : bool;
  trials : int;
  detected : int;
  masked : int;
  corrupted : int;
  hung : int;
  lat_measured : int;  (** detections with a measurable latency *)
  lat_total : int;  (** sum of latencies, in retired instructions *)
  lat_max : int;
}

(** Result of one scripted service-level fault scenario (worker crash,
    worker hang, deadline clock skew, wire corruption, in-memory store
    tamper, on-disk store tamper, circuit breaker). *)
type service_check = { name : string; ok : bool; detail : string }

type report = {
  seed : int64;
  trials_per_cell : int;
  multi_fault : int;
      (** simultaneous faults injected per trial for the image-mutation
          classes (the [--multi-fault] mode); 1 = the classic campaign *)
  fuel : int;
  backends : Sofia_transform.Backend_id.t list;
  cells : cell list;
  service : service_check list;
}

val default_fuel : int
(** Clean-run/faulted-run instruction budget (2 M): bounds a faulted
    run that would otherwise spin, and is far above any registry
    workload's clean instruction count. *)

val run :
  ?obs:Sofia_obs.Obs.t ->
  ?fuel:int ->
  ?classes:Site.clazz list ->
  ?backends:Sofia_transform.Backend_id.t list ->
  ?with_service:bool ->
  ?with_fleet:bool ->
  ?workloads:Sofia_workloads.Workload.t list ->
  ?engine:Sofia_cpu.Run_config.engine ->
  ?multi_fault:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  report
(** Sweep [backends] (default [[Sofia]]) × [classes] (default
    {!Site.all}) × [workloads] (default the full registry) with
    [trials] sampled sites per cell. Each backend protects every
    workload through its own registry entry and is profiled and
    faulted independently; classes a backend has no site for
    ({!Site.applicable}) produce zero-trial not-applicable cells.
    [obs], when tracing, receives one [Custom] event per trial
    ([fault:<backend>:<workload>:<class>:<verdict>], value = latency
    or -1).
    [with_service] (default [true]) appends the seven service scenarios,
    which spawn real worker domains and take ~1 s of wall time.
    [with_fleet] (default: [with_service]) additionally re-runs the
    failure wall at fleet scope — twelve scenarios that each spawn a
    real [sofia_cli fleet] of child processes (kill -9, SIGSTOP past
    the watchdog, clock skew, wire garbage, a digest-lying child, a
    poison job tripping the process breaker, a poisoned shard store,
    a four-client flood, a slow-loris reader, quarantine rejoin under
    load, a budget-bounded restart storm, and a tampered persistent
    replay cache across a router restart) — and is skipped with a
    passing note when no sofia_cli binary can be found. [engine]
    (default [Fast]) selects the execution engine for every simulated
    run; reports are byte-identical between engines.
    [multi_fault] (default 1) injects that many pairwise-distinct
    simultaneous faults per trial for the image-mutation classes
    ([Insn_flip], [Mac_flip], [Keystream], [Mux_swap]); [Edge_redirect]
    and [Fetch_transient] stay single-fault. With the default the PRNG
    stream, and therefore the whole matrix, is bit-identical to the
    pre-multi-fault campaign. *)

val by_class : report -> cell list
(** The matrix aggregated to one cell per (backend, class) pair
    (workload ["*"]), backends in report order, classes in {!Site.all}
    order; classes absent from the report are omitted. *)

val in_model_escapes : report -> int
(** Masked + Corrupted + Hung over the in-model classes — the number
    CI requires to be exactly 0. *)

val in_model_trials : report -> int * int
(** [(detected, trials)] over the in-model classes. *)

val service_ok : report -> bool

val passed : report -> bool
(** [in_model_escapes = 0 && service_ok] — the campaign exit
    criterion. *)

val to_json : report -> Sofia_obs.Json.t
(** Schema [sofia-fault-campaign/3]: seed, faults-per-trial, the
    backend list, the class taxonomy, the full matrix (each cell tagged
    with its backend and applicability), the per-(backend, class)
    aggregation, a per-backend in-model rollup ([by_backend] — the
    multi-fault degradation comparison), the summary (detection rate,
    escapes, [passed]) and the service-check results. *)

val pp : Format.formatter -> report -> unit
(** Human-readable coverage table (per-class rows) + service lines. *)
