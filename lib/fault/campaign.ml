module Machine = Sofia_cpu.Machine
module Runner = Sofia_cpu.Sofia_runner
module Image = Sofia_transform.Image
module Block = Sofia_transform.Block
module Obs = Sofia_obs.Obs
module Event = Sofia_obs.Event
module Trace = Sofia_obs.Trace
module J = Sofia_obs.Json
module Prng = Sofia_util.Prng
module W = Sofia_workloads.Workload
module Engine = Sofia_service.Engine
module Job = Sofia_service.Job
module Store = Sofia_service.Store
module Wire = Sofia_service.Wire
module Svc_metrics = Sofia_service.Svc_metrics

type verdict = Detected | Masked | Corrupted | Hung

let verdict_name = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Corrupted -> "corrupted"
  | Hung -> "hung"

type cell = {
  clazz : Site.clazz;
  backend : Sofia_transform.Backend_id.t;
  workload : string;
  applicable : bool;
      (* false = the class has no site under this backend (Mux_swap
         under SCFP); the cell is kept, with zero trials, so the JSON
         matrix stays rectangular across backends *)
  trials : int;
  detected : int;
  masked : int;
  corrupted : int;
  hung : int;
  lat_measured : int;
  lat_total : int;
  lat_max : int;
}

type service_check = { name : string; ok : bool; detail : string }

type report = {
  seed : int64;
  trials_per_cell : int;
  fuel : int;
  backends : Sofia_transform.Backend_id.t list;
  cells : cell list;
  service : service_check list;
}

let default_fuel = 2_000_000

let bounded_config fuel =
  { Sofia_cpu.Run_config.default with Sofia_cpu.Run_config.fuel }

(* ------------------------------------------------------------------ *)
(* Clean-run profile: faults are only injected into state the clean    *)
(* execution actually consumed, so every trial exercises the detection *)
(* path and an escape is real — never a fault parked in dead code.     *)
(* ------------------------------------------------------------------ *)

type profile = {
  keys : Sofia_crypto.Keys.t;
  image : Image.t;
  clean : Machine.run_result;
  visited : Image.block array;  (* blocks retired from, in first-entry order *)
  visited_mux : Image.block array;
  legit : (int * int, unit) Hashtbl.t;  (* static (prev_pc, entry port) edges *)
}

let profile ~config ~backend ~key_seed (w : W.t) =
  let keys = Sofia_crypto.Keys.generate ~seed:key_seed in
  let image = Sofia_transform.Transform.protect_exn ~backend ~keys ~nonce:1 (W.assemble w) in
  let text_base = image.Image.text_base in
  let seen = Hashtbl.create 64 in
  let bases = ref [] in
  let on_retire ~pc ~insn:_ =
    let base = pc - ((pc - text_base) mod Block.size_bytes) in
    if not (Hashtbl.mem seen base) then begin
      Hashtbl.add seen base ();
      bases := base :: !bases
    end
  in
  let clean = Runner.run ~config ~on_retire ~keys image in
  let visited =
    Array.of_list (List.filter_map (Image.block_of_address image) (List.rev !bases))
  in
  let visited_mux =
    Array.of_list
      (List.filter (fun b -> b.Image.kind = Block.Mux) (Array.to_list visited))
  in
  let legit = Hashtbl.create 64 in
  Array.iter
    (fun (b : Image.block) ->
      let ports = Block.port_offsets b.Image.kind in
      (* under SCFP every join is an Exec block with one entry port, so
         a block may have more predecessors than ports — they all enter
         at the first (only) port *)
      List.iteri
        (fun i prev ->
          let off =
            match List.nth_opt ports i with Some o -> o | None -> List.hd ports
          in
          Hashtbl.replace legit (prev, b.Image.base + off) ())
        b.Image.entry_prev_pcs)
    image.Image.blocks;
  { keys; image; clean; visited; visited_mux; legit }

let classify ~(clean : Machine.run_result) (r : Machine.run_result) =
  match r.Machine.outcome with
  | Machine.Cpu_reset _ -> Detected
  | Machine.Out_of_fuel -> Hung
  | Machine.Halted _ ->
    if
      r.Machine.outcome = clean.Machine.outcome
      && r.Machine.outputs = clean.Machine.outputs
      && String.equal r.Machine.output_text clean.Machine.output_text
    then Masked
    else Corrupted

(* Detection latency in retired instructions: walk the tampered run's
   trace tail back from the Reset event to the Block_fetch that
   consumed the fault, counting Retire events in between. SOFIA's
   headline guarantee — verification before the Memory-Access stage —
   means this must be 0 for every in-model detection. [None] when the
   ring wrapped past the fetch (cannot happen for latency-0 resets). *)
let detection_latency trace =
  let evs = Array.of_list (Trace.to_list trace) in
  let reset = ref None in
  Array.iteri (fun i e -> match e with Event.Reset _ -> reset := Some i | _ -> ()) evs;
  match !reset with
  | None -> None
  | Some ri ->
    let rec back i acc =
      if i < 0 then if Trace.dropped trace > 0 then None else Some acc
      else
        match evs.(i) with
        | Event.Block_fetch _ -> Some acc
        | Event.Retire _ -> back (i - 1) (acc + 1)
        | _ -> back (i - 1) acc
    in
    back (ri - 1) 0

(* ------------------------------------------------------------------ *)
(* One trial                                                           *)
(* ------------------------------------------------------------------ *)

let offsets_for clazz (kind : Block.kind) =
  let range lo hi = List.init (((hi - lo) / 4) + 1) (fun i -> lo + (4 * i)) in
  match clazz with
  | Site.Insn_flip -> range (Block.first_insn_offset kind) Block.exit_offset
  | Site.Mac_flip -> (
    (* a Mux block's M1 copies belong to one path each; only the shared
       M2 word is MAC-consumed by every entry *)
    match kind with Block.Exec -> [ 0; 4 ] | Block.Mux -> [ 8 ])
  | Site.Keystream -> (
    match kind with
    | Block.Exec -> range 0 Block.exit_offset
    | Block.Mux -> range 8 Block.exit_offset)
  | _ -> invalid_arg "offsets_for"

let image_trial ~config ~(p : profile) site =
  let tampered = Site.apply p.image site in
  let trace = Trace.create () in
  let obs = Obs.create ~trace () in
  let r = Runner.run ~config ~obs ~keys:p.keys tampered in
  let v = classify ~clean:p.clean r in
  let lat = if v = Detected then detection_latency trace else None in
  (site, v, lat)

(* [None] = the class has no applicable site in this workload (e.g. no
   multiplexor block on the executed path) — recorded as zero trials,
   never as an escape. *)
let one_trial ~config ~rng ~(p : profile) clazz =
  match clazz with
  | (Site.Insn_flip | Site.Mac_flip | Site.Keystream) as cz ->
    if Array.length p.visited = 0 then None
    else begin
      let b = p.visited.(Prng.int_below rng (Array.length p.visited)) in
      let offs = offsets_for cz b.Image.kind in
      let off = List.nth offs (Prng.int_below rng (List.length offs)) in
      let address = b.Image.base + off in
      let mask =
        match cz with
        | Site.Keystream ->
          let rec nz () =
            let m = Prng.next32 rng in
            if m = 0 then nz () else m
          in
          nz ()
        | _ -> 1 lsl Prng.int_below rng 32
      in
      Some (image_trial ~config ~p (Site.Word_xor { address; mask }))
    end
  | Site.Mux_swap ->
    if Array.length p.visited_mux = 0 then None
    else begin
      let b = p.visited_mux.(Prng.int_below rng (Array.length p.visited_mux)) in
      Some
        (image_trial ~config ~p
           (Site.Word_swap { a = b.Image.base; b = b.Image.base + 4 }))
    end
  | Site.Edge_redirect ->
    if Array.length p.visited = 0 then None
    else begin
      let nblocks = Array.length p.image.Image.blocks in
      let rec pick k =
        if k <= 0 then None
        else begin
          let src = p.visited.(Prng.int_below rng (Array.length p.visited)) in
          let from_exit = src.Image.base + Block.exit_offset in
          let tgt = p.image.Image.blocks.(Prng.int_below rng nblocks) in
          let target = tgt.Image.base + (4 * Prng.int_below rng 8) in
          if Hashtbl.mem p.legit (from_exit, target) then pick (k - 1)
          else Some (from_exit, target)
        end
      in
      match pick 64 with
      | None -> None
      | Some (from_exit, target) ->
        let site = Site.Redirect { from_exit; target } in
        (match
           Runner.fetch_block ~keys:p.keys ~image:p.image ~target ~prev_pc:from_exit
         with
         | Runner.Fetch_violation _ ->
           (* rejected in the frontend: nothing ever retires *)
           Some (site, Detected, Some 0)
         | Runner.Block_ok _ -> Some (site, Corrupted, None))
    end
  | Site.Fetch_transient ->
    let fetches = p.clean.Machine.stats.Machine.blocks_entered in
    let fetch = Prng.int_in rng ~lo:1 ~hi:(max 1 fetches) in
    let bit = Prng.int_below rng 256 in
    let site = Site.Transient { fetch; bit } in
    let trace = Trace.create () in
    let obs = Obs.create ~trace () in
    let r = Runner.run ~config ~obs ~fault:(fetch, bit) ~keys:p.keys p.image in
    let v = classify ~clean:p.clean r in
    let lat = if v = Detected then detection_latency trace else None in
    Some (site, v, lat)

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let zero_cell ~backend clazz workload =
  { clazz; backend; workload; applicable = Site.applicable clazz backend; trials = 0;
    detected = 0; masked = 0; corrupted = 0; hung = 0; lat_measured = 0; lat_total = 0;
    lat_max = 0 }

let add_cell c v lat =
  let c = { c with trials = c.trials + 1 } in
  let c =
    match v with
    | Detected -> { c with detected = c.detected + 1 }
    | Masked -> { c with masked = c.masked + 1 }
    | Corrupted -> { c with corrupted = c.corrupted + 1 }
    | Hung -> { c with hung = c.hung + 1 }
  in
  match lat with
  | Some l ->
    { c with lat_measured = c.lat_measured + 1; lat_total = c.lat_total + l;
      lat_max = max c.lat_max l }
  | None -> c

let run_cell ~config ~rng ~obs ~p ~backend ~workload clazz ~trials =
  let c = ref (zero_cell ~backend clazz workload) in
  if !c.applicable then
    for _ = 1 to trials do
      match one_trial ~config ~rng ~p clazz with
      | None -> ()
      | Some (_site, v, lat) ->
        c := add_cell !c v lat;
        if Obs.tracing obs then
          Obs.emit obs
            (Event.Custom
               {
                 name =
                   Printf.sprintf "fault:%s:%s:%s:%s"
                     (Sofia_transform.Backend_id.name backend)
                     workload (Site.name clazz) (verdict_name v);
                 value = (match lat with Some l -> l | None -> -1);
               })
    done;
  !c

(* ------------------------------------------------------------------ *)
(* Service-level fault scenarios                                       *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_crash_id (r : Job.request) = starts_with "crash" r.Job.id

let conserved m = m.Svc_metrics.submitted = Svc_metrics.terminal_sum m

let sc_worker_crash source =
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      max_attempts = 1;
      fault =
        Some (fun req ~attempt:_ -> if is_crash_id req then raise (Job.Crash "injected"));
    }
  in
  let jobs =
    List.init 12 (fun i -> Job.make ~id:(Printf.sprintf "ok-%d" i) (Job.Protect { source }))
    @ List.init 3 (fun i ->
          Job.make ~id:(Printf.sprintf "crash-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let victims_failed =
    List.for_all
      (fun (r : Job.response) ->
        (not (starts_with "crash" r.Job.id))
        ||
        match r.Job.status with
        | Job.Failed msg -> starts_with "worker crashed" msg
        | _ -> false)
      rs
  in
  let others_done =
    List.for_all
      (fun (r : Job.response) ->
        starts_with "crash" r.Job.id
        || match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ok =
    conserved m && victims_failed && others_done
    && m.Svc_metrics.worker_crashes = 3
    && m.Svc_metrics.worker_restarts >= 3
  in
  {
    name = "worker_crash";
    ok;
    detail =
      Printf.sprintf
        "crashes=%d restarts=%d victims_failed=%b others_done=%b conserved=%b"
        m.Svc_metrics.worker_crashes m.Svc_metrics.worker_restarts victims_failed
        others_done (conserved m);
  }

let sc_worker_hang source =
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      max_attempts = 1;
      hang_timeout_ms = Some 120;
      fault =
        Some
          (fun req ~attempt:_ ->
            if String.equal req.Job.id "hang-0" then Unix.sleepf 0.5);
    }
  in
  let jobs =
    Job.make ~id:"hang-0" (Job.Protect { source })
    :: List.init 6 (fun i ->
           Job.make ~id:(Printf.sprintf "ok-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let hang_failed =
    List.exists
      (fun (r : Job.response) ->
        String.equal r.Job.id "hang-0"
        &&
        match r.Job.status with
        | Job.Failed msg -> starts_with "worker hung" msg
        | _ -> false)
      rs
  in
  let others_done =
    List.for_all
      (fun (r : Job.response) ->
        String.equal r.Job.id "hang-0"
        || match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ok =
    conserved m && hang_failed && others_done
    && m.Svc_metrics.worker_hangs >= 1
    && m.Svc_metrics.worker_restarts >= 1
  in
  {
    name = "worker_hang";
    ok;
    detail =
      Printf.sprintf "hangs=%d restarts=%d victim_failed=%b others_done=%b conserved=%b"
        m.Svc_metrics.worker_hangs m.Svc_metrics.worker_restarts hang_failed others_done
        (conserved m);
  }

let sc_clock_skew source =
  (* The reported wall clock jumps by half-days on every read; with
     monotonic deadline arithmetic none of the generous deadlines may
     fire. Before the monotonic-clock fix this scenario timed every
     job out (or immortalized it, depending on the jump's sign). *)
  let step = ref 0 in
  let skewed () =
    incr step;
    1.0e9 +. (float_of_int !step *. if !step mod 2 = 0 then 86_400.0 else -43_200.0)
  in
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      default_deadline_ms = Some 60_000;
      wall_clock = Some skewed;
    }
  in
  let jobs =
    List.init 10 (fun i -> Job.make ~id:(Printf.sprintf "skew-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let all_done =
    List.for_all
      (fun (r : Job.response) ->
        match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ts_injected =
    List.for_all (fun (r : Job.response) -> r.Job.ts > 9.0e8) rs
  in
  let ok = all_done && m.Svc_metrics.timed_out = 0 && conserved m && ts_injected in
  {
    name = "deadline_clock_skew";
    ok;
    detail =
      Printf.sprintf "all_done=%b timed_out=%d ts_injected=%b conserved=%b" all_done
        m.Svc_metrics.timed_out ts_injected (conserved m);
  }

let sc_wire_corrupt source =
  let valid i = J.to_string (Job.request_to_json (Job.make ~id:(Printf.sprintf "w-%d" i) (Job.Protect { source }))) in
  let lines =
    [
      "this is not JSON at all";
      "{\"id\":\"trunc\",\"op\":\"prot";  (* torn mid-line *)
      J.to_string
        (J.Obj [ ("id", J.Str "badop"); ("op", J.Str "detonate"); ("source", J.Str source) ]);
      J.to_string (J.Obj [ ("op", J.Str "protect"); ("source", J.Str source) ]);
      (* missing id *)
    ]
    @ List.init 6 valid
  in
  let in_path = Filename.temp_file "sofia_fault" ".ndjson" in
  let out_path = Filename.temp_file "sofia_fault" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove in_path with Sys_error _ -> ());
      try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
      close_out oc;
      let ic = open_in in_path in
      let out = open_out out_path in
      let stats, _t =
        Wire.serve_channels ~config:{ Engine.default_config with workers = 2 } ic out
      in
      close_in ic;
      close_out out;
      let answered = ref 0 in
      let ic = open_in out_path in
      (try
         while true do
           ignore (input_line ic);
           incr answered
         done
       with End_of_file -> ());
      close_in ic;
      let ok =
        stats.Wire.received = 10 && stats.Wire.malformed = 4
        && stats.Wire.completed = 6 && stats.Wire.failed = 0
        && !answered = 10
      in
      {
        name = "wire_corrupt";
        ok;
        detail =
          Printf.sprintf "received=%d malformed=%d completed=%d answered=%d"
            stats.Wire.received stats.Wire.malformed stats.Wire.completed !answered;
      })

let sc_store_tamper source =
  let cfg = { Engine.default_config with workers = 1 } in
  let _rs, t = Engine.run_batch cfg [ Job.make ~id:"s-0" (Job.Protect { source }) ] in
  let store = Engine.store t in
  match Store.entries store with
  | [] -> { name = "store_tamper"; ok = false; detail = "no entry cached" }
  | (e : Store.entry) :: _ ->
    let clean_before = Store.audit store = [] in
    let i = Bytes.length e.Store.bytes / 2 in
    Bytes.set e.Store.bytes i
      (Char.chr (Char.code (Bytes.get e.Store.bytes i) lxor 0x20));
    let caught = match Store.audit store with [ _ ] -> true | _ -> false in
    {
      name = "store_tamper";
      ok = clean_before && caught;
      detail = Printf.sprintf "clean_before=%b corruption_caught=%b" clean_before caught;
    }

(* The persistent tier under fire (PR 6): protect once through an
   engine with a store directory, then tamper the on-disk artifact and
   table between "processes" (fresh engines over the same directory).
   Gate: every tampered read is a *detected* corrupt miss (the corrupt
   counter moves), and every round still completes with the cold run's
   digest — the store self-repairs by re-protecting, and no tampered
   bytes are ever served. *)
let sc_disk_store_tamper source =
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_file "sofia_fault_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let cfg = { Engine.default_config with workers = 1; store_dir = Some dir } in
      let run_protect () =
        let rs, t = Engine.run_batch cfg [ Job.make ~id:"d-0" (Job.Protect { source }) ] in
        let digest =
          match rs with
          | [ { Job.status = Job.Done (Job.Protected { digest; _ }); _ } ] -> Some digest
          | _ -> None
        in
        (digest, Option.get (Engine.disk_store t))
      in
      let d0, _ = run_protect () in
      let entry suffix =
        match
          List.find_opt
            (fun n -> Filename.check_suffix n suffix)
            (Array.to_list (Sys.readdir dir))
        with
        | Some n -> Some (Filename.concat dir n)
        | None -> None
      in
      match (d0, entry ".k1.sfc", entry ".k2.sfc") with
      | None, _, _ | _, None, _ | _, _, None ->
        { name = "disk_store_tamper"; ok = false; detail = "cold protect left no entry" }
      | Some d0, Some artifact_file, Some table_file ->
        let read p =
          let ic = open_in_bin p in
          let b = Bytes.create (in_channel_length ic) in
          really_input ic b 0 (Bytes.length b);
          close_in ic;
          b
        in
        let write p b =
          let oc = open_out_bin p in
          output_bytes oc b;
          close_out oc
        in
        let pristine_a = read artifact_file and pristine_t = read table_file in
        (* a clean warm restart must actually hit the disk *)
        let clean_digest, clean_store = run_protect () in
        let clean_warm =
          clean_digest = Some d0
          && Sofia_store_fs.Store_fs.hits clean_store > 0
          && Sofia_store_fs.Store_fs.corrupt clean_store = 0
        in
        let flip p frac =
          let b = read p in
          let i = min (Bytes.length b - 1) (frac * Bytes.length b / 100) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          write p b
        in
        let rounds =
          [
            (fun () -> flip artifact_file 10);  (* header *)
            (fun () -> flip artifact_file 50);  (* body *)
            (fun () -> flip artifact_file 93);  (* near the tail *)
            (fun () ->
              let b = read artifact_file in
              write artifact_file (Bytes.sub b 0 (Bytes.length b / 2)));  (* torn *)
            (fun () -> flip table_file 50);  (* pre-decoded table *)
          ]
        in
        let detected = ref 0 and stable = ref 0 in
        List.iter
          (fun tamper ->
            write artifact_file pristine_a;
            write table_file pristine_t;
            tamper ();
            let digest, store = run_protect () in
            if Sofia_store_fs.Store_fs.corrupt store > 0 then incr detected;
            if digest = Some d0 then incr stable)
          rounds;
        let n = List.length rounds in
        let ok = clean_warm && !detected = n && !stable = n in
        {
          name = "disk_store_tamper";
          ok;
          detail =
            Printf.sprintf "clean_warm=%b detected=%d/%d digest_stable=%d/%d" clean_warm
              !detected n !stable n;
        })

let sc_breaker source =
  let cfg =
    {
      Engine.default_config with
      workers = 1;
      max_attempts = 1;
      breaker_threshold = 2;
      breaker_cooldown_ms = 5_000;
      fault =
        Some (fun req ~attempt:_ -> if is_crash_id req then raise (Job.Crash "injected"));
    }
  in
  let t = Engine.create cfg in
  Engine.start t;
  List.iter (Engine.submit t)
    (List.init 3 (fun i -> Job.make ~id:(Printf.sprintf "crash-%d" i) (Job.Protect { source })));
  ignore (Engine.drain t);
  let tripped = Engine.breaker_open t in
  Engine.submit t (Job.make ~id:"after" (Job.Protect { source }));
  let rs = Engine.drain t in
  Engine.shutdown t;
  let m = Engine.metrics t in
  let shed =
    List.exists
      (fun (r : Job.response) ->
        String.equal r.Job.id "after"
        &&
        match r.Job.status with
        | Job.Rejected msg -> starts_with "circuit open" msg
        | _ -> false)
      rs
  in
  let ok = tripped && shed && m.Svc_metrics.breaker_trips >= 1 && conserved m in
  {
    name = "circuit_breaker";
    ok;
    detail =
      Printf.sprintf "tripped=%b shed=%b trips=%d conserved=%b" tripped shed
        m.Svc_metrics.breaker_trips (conserved m);
  }

let service_checks workloads =
  match workloads with
  | [] -> []
  | (w0 : W.t) :: _ ->
    let source = w0.W.source in
    [
      sc_worker_crash source;
      sc_worker_hang source;
      sc_clock_skew source;
      sc_wire_corrupt source;
      sc_store_tamper source;
      sc_disk_store_tamper source;
      sc_breaker source;
    ]

(* ------------------------------------------------------------------ *)
(* Fleet-scope scenarios (PR 7): the same failure wall, one level up.  *)
(* Every scenario drives a REAL fleet — N sofia_cli serve child        *)
(* processes behind the sharding router — and asserts the PR 4 service *)
(* verdicts at process scope: detected, recovered, terminal counters   *)
(* conserved across the whole fleet. Details are engine-independent    *)
(* (booleans and exact-by-construction counts only), so the campaign   *)
(* JSON stays byte-identical across --engine fast/ref.                 *)
(* ------------------------------------------------------------------ *)

module FR = Sofia_fleet.Router
module FC = Sofia_fleet.Child
module FS = Sofia_fleet.Shard

(* Feed the router from a temp file and collect its responses in
   another: no pipe-buffer write deadlock is possible at any job count,
   and the output survives for line-level inspection. *)
let fleet_run ?(children = 3) ?(window = 32) ?(audit_every = 0) ?(replay = true)
    ?(probe_interval_ms = 100) ?(hang_timeout_ms = 5_000) ?(breaker = 3)
    ?(redispatch_limit = 2) ?store_dir ?deadline_ms ?child_extra_args ?on_event ~cli
    lines =
  let in_path = Filename.temp_file "sofia_fleet" ".ndjson" in
  let out_path = Filename.temp_file "sofia_fleet" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove in_path with Sys_error _ -> ());
      try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out in_path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let cin = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
      let cout = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let cfg =
        {
          FR.default_config with
          FR.children;
          window;
          audit_every;
          replay;
          probe_interval_ms;
          hang_timeout_ms;
          breaker_threshold = breaker;
          redispatch_limit;
          store_dir;
          default_deadline_ms = deadline_ms;
          cli = Some cli;
          child_extra_args;
          on_event;
        }
      in
      let stats, doc =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close cin with Unix.Unix_error _ -> ());
            try Unix.close cout with Unix.Unix_error _ -> ())
          (fun () -> FR.run cfg ~client_in:cin ~client_out:cout)
      in
      let responses = ref [] in
      let ic = open_in out_path in
      (try
         while true do
           match J.parse_opt (input_line ic) with
           | Some j -> responses := j :: !responses
           | None -> ()
         done
       with End_of_file -> ());
      close_in ic;
      (List.rev !responses, stats, doc))

let r_str k j = match J.member k j with Some (J.Str s) -> Some s | _ -> None
let r_status j = Option.value ~default:"?" (r_str "status" j)
let fr_all_done rs = rs <> [] && List.for_all (fun j -> r_status j = "done") rs

(* zero lost AND zero duplicated: every id answered exactly once *)
let fr_ids_once ids rs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun j ->
      match r_str "id" j with
      | Some id -> Hashtbl.replace seen id (1 + Option.value ~default:0 (Hashtbl.find_opt seen id))
      | None -> ())
    rs;
  List.for_all (fun id -> Hashtbl.find_opt seen id = Some 1) ids
  && Hashtbl.length seen = List.length ids

let fr_protect_jobs ?(prefix = "f") source n =
  List.init n (fun i ->
      Job.make ~id:(Printf.sprintf "%s-%d" prefix i) ~nonce:(i + 1) (Job.Protect { source }))

let fr_lines jobs = List.map (fun r -> J.to_string (Job.request_to_json r)) jobs

(* build [want] jobs whose shard satisfies [pred], by scanning the
   nonce space: the route is a pure function of the request content
   (the id is excluded from the route key), so pinning a job to — or
   away from — a shard is exact, not probabilistic. Disjoint
   predicates over the same source draw from disjoint nonce sets, so
   the content keys never collide. *)
let fr_pinned_jobs ~children ~pred ~prefix source want =
  let rec go acc n nonce =
    if n = want || nonce > 254 then List.rev acc
    else
      let j =
        Job.make ~id:(Printf.sprintf "%s-%d" prefix n) ~nonce (Job.Protect { source })
      in
      if pred (FS.route ~shards:children j) then go (j :: acc) (n + 1) (nonce + 1)
      else go acc n (nonce + 1)
  in
  go [] 0 1

(* the shard the routing map loads most, for a given job list *)
let fr_busiest ~children jobs =
  let counts = Array.make children 0 in
  List.iter
    (fun j ->
      let k = FS.route ~shards:children j in
      counts.(k) <- counts.(k) + 1)
    jobs;
  let best = ref 0 in
  Array.iteri (fun k c -> if c > counts.(!best) then best := k) counts;
  !best

(* kill -9 a child mid-stream: the router must detect the death, spawn
   a replacement, redispatch the orphans, and deliver every job exactly
   once — fleet-scope sc_worker_crash. *)
let fsc_child_kill cli source =
  let children = 3 in
  let jobs = fr_protect_jobs ~prefix:"fk" source 24 in
  let victim = fr_busiest ~children jobs in
  let pids = Array.make children (-1) in
  let killed = ref false in
  let on_event = function
    | FR.Child_up (k, pid) -> pids.(k) <- pid
    | FR.Client_response n ->
      if n >= 2 && not !killed then begin
        killed := true;
        try Unix.kill pids.(victim) Sys.sigkill with Unix.Unix_error _ -> ()
      end
    | FR.Child_down _ -> ()
  in
  let rs, st, _ = fleet_run ~children ~window:4 ~on_event ~cli (fr_lines jobs) in
  let once = fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) jobs) rs in
  let ok =
    !killed && fr_all_done rs && once && st.FR.deaths >= 1 && st.FR.restarts >= 1
    && FR.conserved st
  in
  {
    name = "fleet_child_kill";
    ok;
    detail =
      Printf.sprintf
        "killed=%b all_done=%b answered_once=%b death_detected=%b restarted=%b conserved=%b"
        !killed (fr_all_done rs) once (st.FR.deaths >= 1) (st.FR.restarts >= 1)
        (FR.conserved st);
  }

(* SIGSTOP a child past the watchdog: silence with traffic owed must be
   diagnosed as a hang, the child killed and replaced, its jobs
   redispatched — fleet-scope sc_worker_hang, except a hung process
   (unlike a hung domain) really is killed. *)
let fsc_child_hang cli source =
  let children = 3 in
  let victim = 0 in
  (* pin most of the traffic to the victim so it is guaranteed to owe
     work when the SIGSTOP lands — a lightly-loaded victim could drain
     before the stop and the watchdog would rightly stay silent *)
  let on_v =
    fr_pinned_jobs ~children ~pred:(fun k -> k = victim) ~prefix:"fh" source 12
  in
  let off_v =
    fr_pinned_jobs ~children ~pred:(fun k -> k <> victim) ~prefix:"fho" source 4
  in
  let jobs = on_v @ off_v in
  let pids = Array.make children (-1) in
  let stopped = ref false in
  let on_event = function
    | FR.Child_up (k, pid) -> pids.(k) <- pid
    | FR.Client_response n ->
      if n >= 1 && not !stopped then begin
        stopped := true;
        try Unix.kill pids.(victim) Sys.sigstop with Unix.Unix_error _ -> ()
      end
    | FR.Child_down _ -> ()
  in
  let rs, st, _ =
    fleet_run ~children ~window:4 ~hang_timeout_ms:400 ~on_event ~cli (fr_lines jobs)
  in
  let once = fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) jobs) rs in
  let ok =
    !stopped && fr_all_done rs && once && st.FR.hangs >= 1 && st.FR.restarts >= 1
    && FR.conserved st
  in
  {
    name = "fleet_child_hang";
    ok;
    detail =
      Printf.sprintf
        "stopped=%b all_done=%b answered_once=%b hang_detected=%b restarted=%b conserved=%b"
        !stopped (fr_all_done rs) once (st.FR.hangs >= 1) (st.FR.restarts >= 1)
        (FR.conserved st);
  }

(* One child's wall clock lies by +12h. Deadlines are monotonic, so
   nothing may time out; the skewed timestamps must still appear in the
   responses (proof the hook was live) — fleet-scope sc_clock_skew. *)
let fsc_clock_skew cli source =
  let children = 3 in
  let skewed = 1 in
  let jobs = fr_protect_jobs ~prefix:"fs" source 16 in
  let routed_to_skewed =
    List.exists (fun j -> FS.route ~shards:children j = skewed) jobs
  in
  let extra k = if k = skewed then [ "--test-wall-skew"; "43200" ] else [] in
  let rs, st, _ =
    fleet_run ~children ~deadline_ms:60_000 ~child_extra_args:extra ~cli (fr_lines jobs)
  in
  let horizon = Unix.gettimeofday () +. 21_600.0 in
  let skew_visible =
    List.exists
      (fun j -> match J.member "ts_unix" j with
        | Some (J.Float ts) -> ts > horizon
        | Some (J.Int ts) -> float_of_int ts > horizon
        | _ -> false)
      rs
  in
  let ok =
    routed_to_skewed && fr_all_done rs && st.FR.timed_out = 0 && skew_visible
    && FR.conserved st
  in
  {
    name = "fleet_clock_skew";
    ok;
    detail =
      Printf.sprintf "all_done=%b timed_out=%d skew_visible=%b conserved=%b"
        (fr_all_done rs) st.FR.timed_out skew_visible (FR.conserved st);
  }

(* Garbage on the client wire is answered by the router itself; the
   children never see a byte that failed to parse — fleet-scope
   sc_wire_corrupt. *)
let fsc_wire_corrupt cli source =
  let bad =
    [
      "this is not JSON at all";
      "{\"id\":\"trunc\",\"op\":\"prot";
      J.to_string
        (J.Obj [ ("id", J.Str "badop"); ("op", J.Str "detonate"); ("source", J.Str source) ]);
      J.to_string (J.Obj [ ("op", J.Str "protect"); ("source", J.Str source) ]);
    ]
  in
  let jobs = fr_protect_jobs ~prefix:"fw" source 6 in
  let rs, st, _ = fleet_run ~cli (bad @ fr_lines jobs) in
  let answered = List.length rs in
  let ok =
    st.FR.received = 10 && st.FR.malformed = 4 && st.FR.submitted = 6 && st.FR.done_ = 6
    && st.FR.deaths = 0 && answered = 10 && FR.conserved st
  in
  {
    name = "fleet_wire_corrupt";
    ok;
    detail =
      Printf.sprintf "received=%d malformed=%d done=%d answered=%d children_untouched=%b"
        st.FR.received st.FR.malformed st.FR.done_ answered (st.FR.deaths = 0);
  }

(* A compromised child lies about every digest. With auditing on every
   distinct key, the router's second opinion catches the first lie, the
   third-shard vote convicts the liar, and the client only ever sees
   digests that match the single-process oracle — the §13 claim that a
   poisoned child cannot serve a wrong image. *)
let fsc_digest_quarantine cli source =
  let children = 3 in
  let liar = 2 in
  let jobs = fr_protect_jobs ~prefix:"fq" source 18 in
  let routed_to_liar = List.exists (fun j -> FS.route ~shards:children j = liar) jobs in
  let oracle = Hashtbl.create 32 in
  let ors, _ = Engine.run_batch { Engine.default_config with Engine.workers = 1 } jobs in
  List.iter
    (fun (r : Job.response) ->
      match r.Job.status with
      | Job.Done (Job.Protected { digest; _ }) -> Hashtbl.replace oracle r.Job.id digest
      | _ -> ())
    ors;
  let extra k = if k = liar then [ "--test-flip-digest" ] else [] in
  let rs, st, _ =
    fleet_run ~children ~audit_every:1 ~child_extra_args:extra ~cli (fr_lines jobs)
  in
  let digests_honest =
    rs <> []
    && List.for_all
         (fun j ->
           match (r_str "id" j, r_str "digest" j) with
           | Some id, Some d -> Hashtbl.find_opt oracle id = Some d
           | _ -> false)
         rs
  in
  let ok =
    routed_to_liar && fr_all_done rs && digests_honest && st.FR.digest_conflicts >= 1
    && st.FR.quarantines >= 1 && FR.conserved st
  in
  {
    name = "fleet_digest_quarantine";
    ok;
    detail =
      Printf.sprintf
        "all_done=%b digests_honest=%b lie_caught=%b liar_quarantined=%b conserved=%b"
        (fr_all_done rs) digests_honest
        (st.FR.digest_conflicts >= 1)
        (st.FR.quarantines >= 1)
        (FR.conserved st);
  }

(* A poison job kills whichever child executes it. Route stability
   sends it back to the same shard until its incarnation budget is
   spent; the third consecutive death trips the process-scope breaker,
   the shard is quarantined, and its healthy traffic re-sheds and
   completes — fleet-scope sc_breaker. window=1 keeps the cascade
   deterministic: the poison always dies alone. *)
let fsc_breaker_reshed cli source =
  let children = 3 in
  let marker = "FLEET-POISON-7" in
  let poison =
    Job.make ~id:"poison" ~nonce:97 (Job.Protect { source = source ^ "\n" ^ marker })
  in
  let pshard = FS.route ~shards:children poison in
  (* half the healthy traffic pinned onto the poison's shard (so the
     quarantine has live work to re-shed), half pinned elsewhere (so
     the rest of the fleet visibly keeps serving through the cascade) *)
  let on_p =
    fr_pinned_jobs ~children ~pred:(fun k -> k = pshard) ~prefix:"fb" source 6
  in
  let off_p =
    fr_pinned_jobs ~children ~pred:(fun k -> k <> pshard) ~prefix:"fbo" source 6
  in
  let jobs = on_p @ off_p in
  let shares_shard = on_p <> [] in
  let extra _ = [ "--test-exit"; marker ] in
  let rs, st, _ =
    fleet_run ~children ~window:1 ~breaker:3 ~redispatch_limit:2 ~child_extra_args:extra
      ~cli
      (fr_lines (poison :: jobs))
  in
  let poison_failed =
    List.exists
      (fun j -> r_str "id" j = Some "poison" && r_status j = "failed")
      rs
  in
  let healthy_done =
    List.for_all
      (fun j -> r_str "id" j = Some "poison" || r_status j = "done")
      rs
    && List.length rs = 13
  in
  let ok =
    shares_shard && poison_failed && healthy_done && st.FR.quarantines >= 1
    && st.FR.deaths = 3 && st.FR.resheds >= 1 && FR.conserved st
  in
  {
    name = "fleet_breaker_reshed";
    ok;
    detail =
      Printf.sprintf
        "poison_failed=%b healthy_done=%b breaker_tripped=%b deaths=%d reshed=%b conserved=%b"
        poison_failed healthy_done
        (st.FR.quarantines >= 1)
        st.FR.deaths (st.FR.resheds >= 1) (FR.conserved st);
  }

(* Poison one shard's persistent store between fleet runs: the fresh
   fleet must detect every tampered artifact (the poisoned child's
   disk-corrupt counter moves), self-repair by re-protecting, and serve
   digests identical to the clean run — fleet-scope
   sc_disk_store_tamper. *)
let fsc_store_poison cli source =
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_file "sofia_fleet_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let children = 3 in
      let poisoned = 1 in
      let jobs = fr_protect_jobs ~prefix:"fp" source 12 in
      let routed =
        List.exists (fun j -> FS.route ~shards:children j = poisoned) jobs
      in
      let digests rs =
        List.filter_map
          (fun j ->
            match (r_str "id" j, r_str "digest" j) with
            | Some id, Some d -> Some (id, d)
            | _ -> None)
          rs
        |> List.sort compare
      in
      let rs1, st1, _ = fleet_run ~children ~store_dir:dir ~cli (fr_lines jobs) in
      let shard_dir = Filename.concat dir (Printf.sprintf "shard-%d" poisoned) in
      let tampered = ref 0 in
      (if Sys.file_exists shard_dir && Sys.is_directory shard_dir then
         Array.iter
           (fun n ->
             let p = Filename.concat shard_dir n in
             if not (Sys.is_directory p) then begin
               let ic = open_in_bin p in
               let b = Bytes.create (in_channel_length ic) in
               really_input ic b 0 (Bytes.length b);
               close_in ic;
               if Bytes.length b > 0 then begin
                 let i = Bytes.length b / 2 in
                 Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
                 let oc = open_out_bin p in
                 output_bytes oc b;
                 close_out oc;
                 incr tampered
               end
             end)
           (Sys.readdir shard_dir));
      let rs2, st2, doc2 = fleet_run ~children ~store_dir:dir ~cli (fr_lines jobs) in
      let corrupt_detected =
        match J.member "children_metrics" doc2 with
        | Some (J.List kids) ->
          List.exists
            (fun kid ->
              J.member "shard" kid = Some (J.Int poisoned)
              &&
              match
                Option.bind (J.member "metrics" kid) (fun m ->
                    Option.bind (J.member "disk" m) (J.member "corrupt"))
              with
              | Some (J.Int n) -> n > 0
              | _ -> false)
            kids
        | _ -> false
      in
      let stable = digests rs1 <> [] && digests rs1 = digests rs2 in
      let ok =
        routed && !tampered > 0 && fr_all_done rs1 && fr_all_done rs2 && stable
        && corrupt_detected && FR.conserved st1 && FR.conserved st2
      in
      {
        name = "fleet_store_poison";
        ok;
        detail =
          Printf.sprintf
            "all_done=%b tampered_detected=%b digests_stable=%b conserved=%b"
            (fr_all_done rs1 && fr_all_done rs2)
            corrupt_detected stable
            (FR.conserved st1 && FR.conserved st2);
      })

let fleet_checks workloads =
  match workloads with
  | [] -> []
  | (w0 : W.t) :: _ -> (
    let source = w0.W.source in
    match FC.find_cli () with
    | None ->
      [
        {
          name = "fleet";
          ok = true;
          detail = "skipped: sofia_cli binary not found (set SOFIA_CLI)";
        };
      ]
    | Some cli ->
      [
        fsc_child_kill cli source;
        fsc_child_hang cli source;
        fsc_clock_skew cli source;
        fsc_wire_corrupt cli source;
        fsc_digest_quarantine cli source;
        fsc_breaker_reshed cli source;
        fsc_store_poison cli source;
      ])

(* ------------------------------------------------------------------ *)
(* Driver, summaries, serialisation                                    *)
(* ------------------------------------------------------------------ *)

let run ?(obs = Obs.none) ?(fuel = default_fuel) ?(classes = Site.all)
    ?(backends = [ Sofia_transform.Backend_id.Sofia ]) ?(with_service = true)
    ?with_fleet ?workloads ?(engine = Sofia_cpu.Run_config.Fast) ~trials ~seed () =
  (* the fleet wall rides with the service wall unless asked otherwise *)
  let with_fleet = Option.value ~default:with_service with_fleet in
  let workloads =
    match workloads with Some ws -> ws | None -> Sofia_workloads.Registry.all ()
  in
  let config = { (bounded_config fuel) with Sofia_cpu.Run_config.engine } in
  let rng = Prng.create ~seed in
  let cells =
    List.concat_map
      (fun backend ->
        List.concat_map
          (fun (w : W.t) ->
            let key_seed = Int64.logxor seed (Store.hash_string w.W.name) in
            let p = profile ~config ~backend ~key_seed w in
            List.map
              (fun clazz ->
                run_cell ~config ~rng ~obs ~p ~backend ~workload:w.W.name clazz
                  ~trials)
              classes)
          workloads)
      backends
  in
  (* the service/fleet walls exercise the wire and supervision layers,
     which are backend-agnostic — run them once, not once per backend *)
  let service =
    (if with_service then service_checks workloads else [])
    @ (if with_fleet then fleet_checks workloads else [])
  in
  { seed; trials_per_cell = trials; fuel; backends; cells; service }

(* one aggregated cell per (backend, class), over every workload *)
let by_backend_class r =
  List.concat_map
    (fun backend ->
      List.filter_map
        (fun clazz ->
          let cs =
            List.filter (fun c -> c.clazz = clazz && c.backend = backend) r.cells
          in
          if cs = [] then None
          else
            Some
              (List.fold_left
                 (fun acc c ->
                   {
                     acc with
                     trials = acc.trials + c.trials;
                     detected = acc.detected + c.detected;
                     masked = acc.masked + c.masked;
                     corrupted = acc.corrupted + c.corrupted;
                     hung = acc.hung + c.hung;
                     lat_measured = acc.lat_measured + c.lat_measured;
                     lat_total = acc.lat_total + c.lat_total;
                     lat_max = max acc.lat_max c.lat_max;
                   })
                 (zero_cell ~backend clazz "*") cs))
        Site.all)
    r.backends

let by_class = by_backend_class

let in_model_escapes r =
  List.fold_left
    (fun acc c ->
      if Site.in_model c.clazz then acc + c.masked + c.corrupted + c.hung else acc)
    0 r.cells

let in_model_trials r =
  List.fold_left
    (fun (d, t) c ->
      if Site.in_model c.clazz then (d + c.detected, t + c.trials) else (d, t))
    (0, 0) r.cells

let service_ok r = List.for_all (fun s -> s.ok) r.service

let passed r = in_model_escapes r = 0 && service_ok r

let lat_mean c =
  if c.lat_measured = 0 then 0.0
  else float_of_int c.lat_total /. float_of_int c.lat_measured

let cell_json c =
  J.Obj
    [
      ("class", J.Str (Site.name c.clazz));
      ("backend", J.Str (Sofia_transform.Backend_id.name c.backend));
      ("workload", J.Str c.workload);
      ("in_model", J.Bool (Site.in_model c.clazz));
      ("applicable", J.Bool c.applicable);
      ("trials", J.Int c.trials);
      ("detected", J.Int c.detected);
      ("masked", J.Int c.masked);
      ("corrupted", J.Int c.corrupted);
      ("hung", J.Int c.hung);
      ( "latency_insns",
        J.Obj
          [
            ("measured", J.Int c.lat_measured);
            ("mean", J.Float (lat_mean c));
            ("max", J.Int c.lat_max);
          ] );
    ]

let to_json r =
  let d, t = in_model_trials r in
  J.Obj
    [
      ("schema", J.Str "sofia-fault-campaign/2");
      ("seed", J.Str (Printf.sprintf "0x%Lx" r.seed));
      ("trials_per_cell", J.Int r.trials_per_cell);
      ("fuel", J.Int r.fuel);
      ( "backends",
        J.List
          (List.map
             (fun b -> J.Str (Sofia_transform.Backend_id.name b))
             r.backends) );
      ( "classes",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.Str (Site.name c));
                   ("in_model", J.Bool (Site.in_model c));
                   ("description", J.Str (Site.describe c));
                 ])
             Site.all) );
      ("matrix", J.List (List.map cell_json r.cells));
      ("by_class", J.List (List.map cell_json (by_class r)));
      ( "summary",
        J.Obj
          [
            ("in_model_trials", J.Int t);
            ("in_model_detected", J.Int d);
            ( "in_model_detection_rate",
              J.Float (if t = 0 then 1.0 else float_of_int d /. float_of_int t) );
            ("in_model_escapes", J.Int (in_model_escapes r));
            ("service_ok", J.Bool (service_ok r));
            ("passed", J.Bool (passed r));
          ] );
      ( "service",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [ ("name", J.Str s.name); ("ok", J.Bool s.ok);
                   ("detail", J.Str s.detail) ])
             r.service) );
    ]

let pp fmt r =
  let d, t = in_model_trials r in
  Format.fprintf fmt "fault campaign  seed=0x%Lx  trials/cell=%d  backends=%s@."
    r.seed r.trials_per_cell
    (String.concat "," (List.map Sofia_transform.Backend_id.name r.backends));
  Format.fprintf fmt "%-7s %-16s %8s %9s %7s %10s %6s %12s %8s@." "backend" "class"
    "trials" "detected" "masked" "corrupted" "hung" "latency-mean" "lat-max";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-7s %-16s %8d %9d %7d %10d %6d %12.2f %8d%s%s@."
        (Sofia_transform.Backend_id.name c.backend)
        (Site.name c.clazz) c.trials c.detected c.masked c.corrupted c.hung
        (lat_mean c) c.lat_max
        (if Site.in_model c.clazz then "" else "  [out of model]")
        (if c.applicable then "" else "  [not applicable]"))
    (by_class r);
  Format.fprintf fmt "in-model: %d/%d detected, %d escape(s)@." d t (in_model_escapes r);
  List.iter
    (fun s ->
      Format.fprintf fmt "service %-20s %s  %s@." s.name
        (if s.ok then "OK " else "FAIL")
        s.detail)
    r.service
