module Machine = Sofia_cpu.Machine
module Runner = Sofia_cpu.Sofia_runner
module Image = Sofia_transform.Image
module Block = Sofia_transform.Block
module Obs = Sofia_obs.Obs
module Event = Sofia_obs.Event
module Trace = Sofia_obs.Trace
module J = Sofia_obs.Json
module Prng = Sofia_util.Prng
module W = Sofia_workloads.Workload
module Engine = Sofia_service.Engine
module Job = Sofia_service.Job
module Store = Sofia_service.Store
module Wire = Sofia_service.Wire
module Svc_metrics = Sofia_service.Svc_metrics

type verdict = Detected | Masked | Corrupted | Hung

let verdict_name = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Corrupted -> "corrupted"
  | Hung -> "hung"

type cell = {
  clazz : Site.clazz;
  backend : Sofia_transform.Backend_id.t;
  workload : string;
  applicable : bool;
      (* false = the class has no site under this backend (Mux_swap
         under SCFP); the cell is kept, with zero trials, so the JSON
         matrix stays rectangular across backends *)
  trials : int;
  detected : int;
  masked : int;
  corrupted : int;
  hung : int;
  lat_measured : int;
  lat_total : int;
  lat_max : int;
}

type service_check = { name : string; ok : bool; detail : string }

type report = {
  seed : int64;
  trials_per_cell : int;
  multi_fault : int;  (* simultaneous faults per trial (image classes) *)
  fuel : int;
  backends : Sofia_transform.Backend_id.t list;
  cells : cell list;
  service : service_check list;
}

let default_fuel = 2_000_000

let bounded_config fuel =
  { Sofia_cpu.Run_config.default with Sofia_cpu.Run_config.fuel }

(* ------------------------------------------------------------------ *)
(* Clean-run profile: faults are only injected into state the clean    *)
(* execution actually consumed, so every trial exercises the detection *)
(* path and an escape is real — never a fault parked in dead code.     *)
(* ------------------------------------------------------------------ *)

type profile = {
  keys : Sofia_crypto.Keys.t;
  image : Image.t;
  clean : Machine.run_result;
  visited : Image.block array;  (* blocks retired from, in first-entry order *)
  visited_mux : Image.block array;
  legit : (int * int, unit) Hashtbl.t;  (* static (prev_pc, entry port) edges *)
}

let profile ~config ~backend ~key_seed (w : W.t) =
  let keys = Sofia_crypto.Keys.generate ~seed:key_seed in
  let image = Sofia_transform.Transform.protect_exn ~backend ~keys ~nonce:1 (W.assemble w) in
  let text_base = image.Image.text_base in
  let seen = Hashtbl.create 64 in
  let bases = ref [] in
  let on_retire ~pc ~insn:_ =
    let base = pc - ((pc - text_base) mod Block.size_bytes) in
    if not (Hashtbl.mem seen base) then begin
      Hashtbl.add seen base ();
      bases := base :: !bases
    end
  in
  let clean = Runner.run ~config ~on_retire ~keys image in
  let visited =
    Array.of_list (List.filter_map (Image.block_of_address image) (List.rev !bases))
  in
  let visited_mux =
    Array.of_list
      (List.filter (fun b -> b.Image.kind = Block.Mux) (Array.to_list visited))
  in
  let legit = Hashtbl.create 64 in
  Array.iter
    (fun (b : Image.block) ->
      let ports = Block.port_offsets b.Image.kind in
      (* under SCFP every join is an Exec block with one entry port, so
         a block may have more predecessors than ports — they all enter
         at the first (only) port *)
      List.iteri
        (fun i prev ->
          let off =
            match List.nth_opt ports i with Some o -> o | None -> List.hd ports
          in
          Hashtbl.replace legit (prev, b.Image.base + off) ())
        b.Image.entry_prev_pcs)
    image.Image.blocks;
  { keys; image; clean; visited; visited_mux; legit }

let classify ~(clean : Machine.run_result) (r : Machine.run_result) =
  match r.Machine.outcome with
  | Machine.Cpu_reset _ -> Detected
  | Machine.Out_of_fuel -> Hung
  | Machine.Halted _ ->
    if
      r.Machine.outcome = clean.Machine.outcome
      && r.Machine.outputs = clean.Machine.outputs
      && String.equal r.Machine.output_text clean.Machine.output_text
    then Masked
    else Corrupted

(* Detection latency in retired instructions: walk the tampered run's
   trace tail back from the Reset event to the Block_fetch that
   consumed the fault, counting Retire events in between. SOFIA's
   headline guarantee — verification before the Memory-Access stage —
   means this must be 0 for every in-model detection. [None] when the
   ring wrapped past the fetch (cannot happen for latency-0 resets). *)
let detection_latency trace =
  let evs = Array.of_list (Trace.to_list trace) in
  let reset = ref None in
  Array.iteri (fun i e -> match e with Event.Reset _ -> reset := Some i | _ -> ()) evs;
  match !reset with
  | None -> None
  | Some ri ->
    let rec back i acc =
      if i < 0 then if Trace.dropped trace > 0 then None else Some acc
      else
        match evs.(i) with
        | Event.Block_fetch _ -> Some acc
        | Event.Retire _ -> back (i - 1) (acc + 1)
        | _ -> back (i - 1) acc
    in
    back (ri - 1) 0

(* ------------------------------------------------------------------ *)
(* One trial                                                           *)
(* ------------------------------------------------------------------ *)

let offsets_for clazz (kind : Block.kind) =
  let range lo hi = List.init (((hi - lo) / 4) + 1) (fun i -> lo + (4 * i)) in
  match clazz with
  | Site.Insn_flip -> range (Block.first_insn_offset kind) Block.exit_offset
  | Site.Mac_flip -> (
    (* a Mux block's M1 copies belong to one path each; only the shared
       M2 word is MAC-consumed by every entry *)
    match kind with Block.Exec -> [ 0; 4 ] | Block.Mux -> [ 8 ])
  | Site.Keystream -> (
    match kind with
    | Block.Exec -> range 0 Block.exit_offset
    | Block.Mux -> range 8 Block.exit_offset)
  | _ -> invalid_arg "offsets_for"

(* Apply every site to the same image before one run — the
   [--multi-fault] mode (N simultaneous flips per trial). The verdict
   and latency are measured exactly as for a single fault: the clean
   profile is unchanged, only the tampered image carries more damage. *)
let image_trial ~config ~(p : profile) sites =
  let tampered = List.fold_left Site.apply p.image sites in
  let trace = Trace.create () in
  let obs = Obs.create ~trace () in
  let r = Runner.run ~config ~obs ~keys:p.keys tampered in
  let v = classify ~clean:p.clean r in
  let lat = if v = Detected then detection_latency trace else None in
  (List.hd sites, v, lat)

(* [n] pairwise-distinct sites from one sampler. Distinctness matters:
   a repeated fault cancels itself (x XOR x = 0, swapping a pair twice
   restores it) and would launder a Masked verdict into the matrix.
   Bounded retries — a workload with fewer distinct sites than
   requested faults contributes as many as exist. With [n = 1] the
   sampler is called exactly once, so the PRNG stream (and therefore
   the whole matrix) is bit-identical to the single-fault campaign. *)
let sample_distinct ~n sample =
  let rec go acc k fuel =
    if k >= n || fuel <= 0 then List.rev acc
    else
      let s = sample () in
      if List.mem s acc then go acc k (fuel - 1) else go (s :: acc) (k + 1) (fuel - 1)
  in
  go [] 0 (64 * n)

(* [None] = the class has no applicable site in this workload (e.g. no
   multiplexor block on the executed path) — recorded as zero trials,
   never as an escape. [multi] faults are injected per trial for the
   image-mutation classes; [Edge_redirect] and [Fetch_transient] model
   a single rogue edge / a single transient flip and stay single-fault
   regardless (their detection path has no cross-fault interaction to
   degrade). *)
let one_trial ~config ~rng ~multi ~(p : profile) clazz =
  match clazz with
  | (Site.Insn_flip | Site.Mac_flip | Site.Keystream) as cz ->
    if Array.length p.visited = 0 then None
    else begin
      let sample () =
        let b = p.visited.(Prng.int_below rng (Array.length p.visited)) in
        let offs = offsets_for cz b.Image.kind in
        let off = List.nth offs (Prng.int_below rng (List.length offs)) in
        let address = b.Image.base + off in
        let mask =
          match cz with
          | Site.Keystream ->
            let rec nz () =
              let m = Prng.next32 rng in
              if m = 0 then nz () else m
            in
            nz ()
          | _ -> 1 lsl Prng.int_below rng 32
        in
        Site.Word_xor { address; mask }
      in
      Some (image_trial ~config ~p (sample_distinct ~n:multi sample))
    end
  | Site.Mux_swap ->
    if Array.length p.visited_mux = 0 then None
    else begin
      let sample () =
        let b = p.visited_mux.(Prng.int_below rng (Array.length p.visited_mux)) in
        Site.Word_swap { a = b.Image.base; b = b.Image.base + 4 }
      in
      Some (image_trial ~config ~p (sample_distinct ~n:multi sample))
    end
  | Site.Edge_redirect ->
    if Array.length p.visited = 0 then None
    else begin
      let nblocks = Array.length p.image.Image.blocks in
      let rec pick k =
        if k <= 0 then None
        else begin
          let src = p.visited.(Prng.int_below rng (Array.length p.visited)) in
          let from_exit = src.Image.base + Block.exit_offset in
          let tgt = p.image.Image.blocks.(Prng.int_below rng nblocks) in
          let target = tgt.Image.base + (4 * Prng.int_below rng 8) in
          if Hashtbl.mem p.legit (from_exit, target) then pick (k - 1)
          else Some (from_exit, target)
        end
      in
      match pick 64 with
      | None -> None
      | Some (from_exit, target) ->
        let site = Site.Redirect { from_exit; target } in
        (match
           Runner.fetch_block ~keys:p.keys ~image:p.image ~target ~prev_pc:from_exit
         with
         | Runner.Fetch_violation _ ->
           (* rejected in the frontend: nothing ever retires *)
           Some (site, Detected, Some 0)
         | Runner.Block_ok _ -> Some (site, Corrupted, None))
    end
  | Site.Fetch_transient ->
    let fetches = p.clean.Machine.stats.Machine.blocks_entered in
    let fetch = Prng.int_in rng ~lo:1 ~hi:(max 1 fetches) in
    let bit = Prng.int_below rng 256 in
    let site = Site.Transient { fetch; bit } in
    let trace = Trace.create () in
    let obs = Obs.create ~trace () in
    let r = Runner.run ~config ~obs ~fault:(fetch, bit) ~keys:p.keys p.image in
    let v = classify ~clean:p.clean r in
    let lat = if v = Detected then detection_latency trace else None in
    Some (site, v, lat)

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let zero_cell ~backend clazz workload =
  { clazz; backend; workload; applicable = Site.applicable clazz backend; trials = 0;
    detected = 0; masked = 0; corrupted = 0; hung = 0; lat_measured = 0; lat_total = 0;
    lat_max = 0 }

let add_cell c v lat =
  let c = { c with trials = c.trials + 1 } in
  let c =
    match v with
    | Detected -> { c with detected = c.detected + 1 }
    | Masked -> { c with masked = c.masked + 1 }
    | Corrupted -> { c with corrupted = c.corrupted + 1 }
    | Hung -> { c with hung = c.hung + 1 }
  in
  match lat with
  | Some l ->
    { c with lat_measured = c.lat_measured + 1; lat_total = c.lat_total + l;
      lat_max = max c.lat_max l }
  | None -> c

let run_cell ~config ~rng ~multi ~obs ~p ~backend ~workload clazz ~trials =
  let c = ref (zero_cell ~backend clazz workload) in
  if !c.applicable then
    for _ = 1 to trials do
      match one_trial ~config ~rng ~multi ~p clazz with
      | None -> ()
      | Some (_site, v, lat) ->
        c := add_cell !c v lat;
        if Obs.tracing obs then
          Obs.emit obs
            (Event.Custom
               {
                 name =
                   Printf.sprintf "fault:%s:%s:%s:%s"
                     (Sofia_transform.Backend_id.name backend)
                     workload (Site.name clazz) (verdict_name v);
                 value = (match lat with Some l -> l | None -> -1);
               })
    done;
  !c

(* ------------------------------------------------------------------ *)
(* Service-level fault scenarios                                       *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_crash_id (r : Job.request) = starts_with "crash" r.Job.id

let conserved m = m.Svc_metrics.submitted = Svc_metrics.terminal_sum m

let sc_worker_crash source =
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      max_attempts = 1;
      fault =
        Some (fun req ~attempt:_ -> if is_crash_id req then raise (Job.Crash "injected"));
    }
  in
  let jobs =
    List.init 12 (fun i -> Job.make ~id:(Printf.sprintf "ok-%d" i) (Job.Protect { source }))
    @ List.init 3 (fun i ->
          Job.make ~id:(Printf.sprintf "crash-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let victims_failed =
    List.for_all
      (fun (r : Job.response) ->
        (not (starts_with "crash" r.Job.id))
        ||
        match r.Job.status with
        | Job.Failed msg -> starts_with "worker crashed" msg
        | _ -> false)
      rs
  in
  let others_done =
    List.for_all
      (fun (r : Job.response) ->
        starts_with "crash" r.Job.id
        || match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ok =
    conserved m && victims_failed && others_done
    && m.Svc_metrics.worker_crashes = 3
    && m.Svc_metrics.worker_restarts >= 3
  in
  {
    name = "worker_crash";
    ok;
    detail =
      Printf.sprintf
        "crashes=%d restarts=%d victims_failed=%b others_done=%b conserved=%b"
        m.Svc_metrics.worker_crashes m.Svc_metrics.worker_restarts victims_failed
        others_done (conserved m);
  }

let sc_worker_hang source =
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      max_attempts = 1;
      hang_timeout_ms = Some 120;
      fault =
        Some
          (fun req ~attempt:_ ->
            if String.equal req.Job.id "hang-0" then Unix.sleepf 0.5);
    }
  in
  let jobs =
    Job.make ~id:"hang-0" (Job.Protect { source })
    :: List.init 6 (fun i ->
           Job.make ~id:(Printf.sprintf "ok-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let hang_failed =
    List.exists
      (fun (r : Job.response) ->
        String.equal r.Job.id "hang-0"
        &&
        match r.Job.status with
        | Job.Failed msg -> starts_with "worker hung" msg
        | _ -> false)
      rs
  in
  let others_done =
    List.for_all
      (fun (r : Job.response) ->
        String.equal r.Job.id "hang-0"
        || match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ok =
    conserved m && hang_failed && others_done
    && m.Svc_metrics.worker_hangs >= 1
    && m.Svc_metrics.worker_restarts >= 1
  in
  {
    name = "worker_hang";
    ok;
    detail =
      Printf.sprintf "hangs=%d restarts=%d victim_failed=%b others_done=%b conserved=%b"
        m.Svc_metrics.worker_hangs m.Svc_metrics.worker_restarts hang_failed others_done
        (conserved m);
  }

let sc_clock_skew source =
  (* The reported wall clock jumps by half-days on every read; with
     monotonic deadline arithmetic none of the generous deadlines may
     fire. Before the monotonic-clock fix this scenario timed every
     job out (or immortalized it, depending on the jump's sign). *)
  let step = ref 0 in
  let skewed () =
    incr step;
    1.0e9 +. (float_of_int !step *. if !step mod 2 = 0 then 86_400.0 else -43_200.0)
  in
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      default_deadline_ms = Some 60_000;
      wall_clock = Some skewed;
    }
  in
  let jobs =
    List.init 10 (fun i -> Job.make ~id:(Printf.sprintf "skew-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let all_done =
    List.for_all
      (fun (r : Job.response) ->
        match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ts_injected =
    List.for_all (fun (r : Job.response) -> r.Job.ts > 9.0e8) rs
  in
  let ok = all_done && m.Svc_metrics.timed_out = 0 && conserved m && ts_injected in
  {
    name = "deadline_clock_skew";
    ok;
    detail =
      Printf.sprintf "all_done=%b timed_out=%d ts_injected=%b conserved=%b" all_done
        m.Svc_metrics.timed_out ts_injected (conserved m);
  }

let sc_wire_corrupt source =
  let valid i = J.to_string (Job.request_to_json (Job.make ~id:(Printf.sprintf "w-%d" i) (Job.Protect { source }))) in
  let lines =
    [
      "this is not JSON at all";
      "{\"id\":\"trunc\",\"op\":\"prot";  (* torn mid-line *)
      J.to_string
        (J.Obj [ ("id", J.Str "badop"); ("op", J.Str "detonate"); ("source", J.Str source) ]);
      J.to_string (J.Obj [ ("op", J.Str "protect"); ("source", J.Str source) ]);
      (* missing id *)
    ]
    @ List.init 6 valid
  in
  let in_path = Filename.temp_file "sofia_fault" ".ndjson" in
  let out_path = Filename.temp_file "sofia_fault" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove in_path with Sys_error _ -> ());
      try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
      close_out oc;
      let ic = open_in in_path in
      let out = open_out out_path in
      let stats, _t =
        Wire.serve_channels ~config:{ Engine.default_config with workers = 2 } ic out
      in
      close_in ic;
      close_out out;
      let answered = ref 0 in
      let ic = open_in out_path in
      (try
         while true do
           ignore (input_line ic);
           incr answered
         done
       with End_of_file -> ());
      close_in ic;
      let ok =
        stats.Wire.received = 10 && stats.Wire.malformed = 4
        && stats.Wire.completed = 6 && stats.Wire.failed = 0
        && !answered = 10
      in
      {
        name = "wire_corrupt";
        ok;
        detail =
          Printf.sprintf "received=%d malformed=%d completed=%d answered=%d"
            stats.Wire.received stats.Wire.malformed stats.Wire.completed !answered;
      })

let sc_store_tamper source =
  let cfg = { Engine.default_config with workers = 1 } in
  let _rs, t = Engine.run_batch cfg [ Job.make ~id:"s-0" (Job.Protect { source }) ] in
  let store = Engine.store t in
  match Store.entries store with
  | [] -> { name = "store_tamper"; ok = false; detail = "no entry cached" }
  | (e : Store.entry) :: _ ->
    let clean_before = Store.audit store = [] in
    let i = Bytes.length e.Store.bytes / 2 in
    Bytes.set e.Store.bytes i
      (Char.chr (Char.code (Bytes.get e.Store.bytes i) lxor 0x20));
    let caught = match Store.audit store with [ _ ] -> true | _ -> false in
    {
      name = "store_tamper";
      ok = clean_before && caught;
      detail = Printf.sprintf "clean_before=%b corruption_caught=%b" clean_before caught;
    }

(* The persistent tier under fire (PR 6): protect once through an
   engine with a store directory, then tamper the on-disk artifact and
   table between "processes" (fresh engines over the same directory).
   Gate: every tampered read is a *detected* corrupt miss (the corrupt
   counter moves), and every round still completes with the cold run's
   digest — the store self-repairs by re-protecting, and no tampered
   bytes are ever served. *)
let sc_disk_store_tamper source =
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_file "sofia_fault_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let cfg = { Engine.default_config with workers = 1; store_dir = Some dir } in
      let run_protect () =
        let rs, t = Engine.run_batch cfg [ Job.make ~id:"d-0" (Job.Protect { source }) ] in
        let digest =
          match rs with
          | [ { Job.status = Job.Done (Job.Protected { digest; _ }); _ } ] -> Some digest
          | _ -> None
        in
        (digest, Option.get (Engine.disk_store t))
      in
      let d0, _ = run_protect () in
      let entry suffix =
        match
          List.find_opt
            (fun n -> Filename.check_suffix n suffix)
            (Array.to_list (Sys.readdir dir))
        with
        | Some n -> Some (Filename.concat dir n)
        | None -> None
      in
      match (d0, entry ".k1.sfc", entry ".k2.sfc") with
      | None, _, _ | _, None, _ | _, _, None ->
        { name = "disk_store_tamper"; ok = false; detail = "cold protect left no entry" }
      | Some d0, Some artifact_file, Some table_file ->
        let read p =
          let ic = open_in_bin p in
          let b = Bytes.create (in_channel_length ic) in
          really_input ic b 0 (Bytes.length b);
          close_in ic;
          b
        in
        let write p b =
          let oc = open_out_bin p in
          output_bytes oc b;
          close_out oc
        in
        let pristine_a = read artifact_file and pristine_t = read table_file in
        (* a clean warm restart must actually hit the disk *)
        let clean_digest, clean_store = run_protect () in
        let clean_warm =
          clean_digest = Some d0
          && Sofia_store_fs.Store_fs.hits clean_store > 0
          && Sofia_store_fs.Store_fs.corrupt clean_store = 0
        in
        let flip p frac =
          let b = read p in
          let i = min (Bytes.length b - 1) (frac * Bytes.length b / 100) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          write p b
        in
        let rounds =
          [
            (fun () -> flip artifact_file 10);  (* header *)
            (fun () -> flip artifact_file 50);  (* body *)
            (fun () -> flip artifact_file 93);  (* near the tail *)
            (fun () ->
              let b = read artifact_file in
              write artifact_file (Bytes.sub b 0 (Bytes.length b / 2)));  (* torn *)
            (fun () -> flip table_file 50);  (* pre-decoded table *)
          ]
        in
        let detected = ref 0 and stable = ref 0 in
        List.iter
          (fun tamper ->
            write artifact_file pristine_a;
            write table_file pristine_t;
            tamper ();
            let digest, store = run_protect () in
            if Sofia_store_fs.Store_fs.corrupt store > 0 then incr detected;
            if digest = Some d0 then incr stable)
          rounds;
        let n = List.length rounds in
        let ok = clean_warm && !detected = n && !stable = n in
        {
          name = "disk_store_tamper";
          ok;
          detail =
            Printf.sprintf "clean_warm=%b detected=%d/%d digest_stable=%d/%d" clean_warm
              !detected n !stable n;
        })

let sc_breaker source =
  let cfg =
    {
      Engine.default_config with
      workers = 1;
      max_attempts = 1;
      breaker_threshold = 2;
      breaker_cooldown_ms = 5_000;
      fault =
        Some (fun req ~attempt:_ -> if is_crash_id req then raise (Job.Crash "injected"));
    }
  in
  let t = Engine.create cfg in
  Engine.start t;
  List.iter (Engine.submit t)
    (List.init 3 (fun i -> Job.make ~id:(Printf.sprintf "crash-%d" i) (Job.Protect { source })));
  ignore (Engine.drain t);
  let tripped = Engine.breaker_open t in
  Engine.submit t (Job.make ~id:"after" (Job.Protect { source }));
  let rs = Engine.drain t in
  Engine.shutdown t;
  let m = Engine.metrics t in
  let shed =
    List.exists
      (fun (r : Job.response) ->
        String.equal r.Job.id "after"
        &&
        match r.Job.status with
        | Job.Rejected msg -> starts_with "circuit open" msg
        | _ -> false)
      rs
  in
  let ok = tripped && shed && m.Svc_metrics.breaker_trips >= 1 && conserved m in
  {
    name = "circuit_breaker";
    ok;
    detail =
      Printf.sprintf "tripped=%b shed=%b trips=%d conserved=%b" tripped shed
        m.Svc_metrics.breaker_trips (conserved m);
  }

let service_checks workloads =
  match workloads with
  | [] -> []
  | (w0 : W.t) :: _ ->
    let source = w0.W.source in
    [
      sc_worker_crash source;
      sc_worker_hang source;
      sc_clock_skew source;
      sc_wire_corrupt source;
      sc_store_tamper source;
      sc_disk_store_tamper source;
      sc_breaker source;
    ]

(* ------------------------------------------------------------------ *)
(* Fleet-scope scenarios (PR 7): the same failure wall, one level up.  *)
(* Every scenario drives a REAL fleet — N sofia_cli serve child        *)
(* processes behind the sharding router — and asserts the PR 4 service *)
(* verdicts at process scope: detected, recovered, terminal counters   *)
(* conserved across the whole fleet. Details are engine-independent    *)
(* (booleans and exact-by-construction counts only), so the campaign   *)
(* JSON stays byte-identical across --engine fast/ref.                 *)
(* ------------------------------------------------------------------ *)

module FR = Sofia_fleet.Router
module FC = Sofia_fleet.Child
module FS = Sofia_fleet.Shard

(* Feed the router from a temp file and collect its responses in
   another: no pipe-buffer write deadlock is possible at any job count,
   and the output survives for line-level inspection. *)
let fleet_cfg ?(children = 3) ?(window = 32) ?(audit_every = 0) ?(replay = true)
    ?(probe_interval_ms = 100) ?(hang_timeout_ms = 5_000) ?(breaker = 3)
    ?(redispatch_limit = 2) ?(rejoin_cooldown_ms = 30_000) ?(rejoin_probes = 3)
    ?(restart_backoff_ms = 25) ?(restart_budget = 6)
    ?(restart_budget_window_ms = 10_000) ?(client_linger_ms = 5_000) ?replay_dir
    ?store_dir ?deadline_ms ?child_extra_args ?on_event ~cli () =
  {
    FR.default_config with
    FR.children;
    window;
    audit_every;
    replay;
    probe_interval_ms;
    hang_timeout_ms;
    breaker_threshold = breaker;
    redispatch_limit;
    rejoin_cooldown_ms;
    rejoin_probes;
    restart_backoff_ms;
    restart_budget;
    restart_budget_window_ms;
    client_linger_ms;
    replay_dir;
    store_dir;
    default_deadline_ms = deadline_ms;
    cli = Some cli;
    child_extra_args;
    on_event;
  }

let read_responses out_path =
  let responses = ref [] in
  let ic = open_in out_path in
  (try
     while true do
       match J.parse_opt (input_line ic) with
       | Some j -> responses := j :: !responses
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !responses

let fleet_run ?children ?window ?audit_every ?replay ?probe_interval_ms
    ?hang_timeout_ms ?breaker ?redispatch_limit ?rejoin_cooldown_ms ?rejoin_probes
    ?restart_backoff_ms ?restart_budget ?restart_budget_window_ms ?client_linger_ms
    ?replay_dir ?store_dir ?deadline_ms ?child_extra_args ?on_event ~cli lines =
  let in_path = Filename.temp_file "sofia_fleet" ".ndjson" in
  let out_path = Filename.temp_file "sofia_fleet" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove in_path with Sys_error _ -> ());
      try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out in_path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let cin = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
      let cout = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let cfg =
        fleet_cfg ?children ?window ?audit_every ?replay ?probe_interval_ms
          ?hang_timeout_ms ?breaker ?redispatch_limit ?rejoin_cooldown_ms
          ?rejoin_probes ?restart_backoff_ms ?restart_budget
          ?restart_budget_window_ms ?client_linger_ms ?replay_dir ?store_dir
          ?deadline_ms ?child_extra_args ?on_event ~cli ()
      in
      let stats, doc =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close cin with Unix.Unix_error _ -> ());
            try Unix.close cout with Unix.Unix_error _ -> ())
          (fun () -> FR.run cfg ~client_in:cin ~client_out:cout)
      in
      (read_responses out_path, stats, doc))

(* Several concurrent clients over the same fleet: each client's lines
   go in from its own temp file and its responses come back to its own,
   so slow-reader and flood behaviour is per-client observable. Returns
   one response list per client, in order. *)
let fleet_run_clients ?children ?window ?audit_every ?replay ?probe_interval_ms
    ?hang_timeout_ms ?breaker ?redispatch_limit ?rejoin_cooldown_ms ?rejoin_probes
    ?restart_backoff_ms ?restart_budget ?restart_budget_window_ms ?client_linger_ms
    ?replay_dir ?store_dir ?deadline_ms ?child_extra_args ?on_event ~cli
    per_client_lines =
  let files =
    List.map
      (fun lines ->
        let in_path = Filename.temp_file "sofia_fleet_cl" ".ndjson" in
        let out_path = Filename.temp_file "sofia_fleet_cl" ".out" in
        let oc = open_out in_path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc;
        (in_path, out_path))
      per_client_lines
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (i, o) ->
          (try Sys.remove i with Sys_error _ -> ());
          try Sys.remove o with Sys_error _ -> ())
        files)
    (fun () ->
      let fds =
        List.map
          (fun (i, o) ->
            ( Unix.openfile i [ Unix.O_RDONLY ] 0,
              Unix.openfile o [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 ))
          files
      in
      let cfg =
        fleet_cfg ?children ?window ?audit_every ?replay ?probe_interval_ms
          ?hang_timeout_ms ?breaker ?redispatch_limit ?rejoin_cooldown_ms
          ?rejoin_probes ?restart_backoff_ms ?restart_budget
          ?restart_budget_window_ms ?client_linger_ms ?replay_dir ?store_dir
          ?deadline_ms ?child_extra_args ?on_event ~cli ()
      in
      let stats, doc =
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun (i, o) ->
                (try Unix.close i with Unix.Unix_error _ -> ());
                try Unix.close o with Unix.Unix_error _ -> ())
              fds)
          (fun () -> FR.run_clients cfg ~clients:fds)
      in
      (List.map (fun (_, o) -> read_responses o) files, stats, doc))

let r_str k j = match J.member k j with Some (J.Str s) -> Some s | _ -> None
let r_status j = Option.value ~default:"?" (r_str "status" j)
let fr_all_done rs = rs <> [] && List.for_all (fun j -> r_status j = "done") rs

(* zero lost AND zero duplicated: every id answered exactly once *)
let fr_ids_once ids rs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun j ->
      match r_str "id" j with
      | Some id -> Hashtbl.replace seen id (1 + Option.value ~default:0 (Hashtbl.find_opt seen id))
      | None -> ())
    rs;
  List.for_all (fun id -> Hashtbl.find_opt seen id = Some 1) ids
  && Hashtbl.length seen = List.length ids

let fr_protect_jobs ?(prefix = "f") source n =
  List.init n (fun i ->
      Job.make ~id:(Printf.sprintf "%s-%d" prefix i) ~nonce:(i + 1) (Job.Protect { source }))

let fr_lines jobs = List.map (fun r -> J.to_string (Job.request_to_json r)) jobs

(* build [want] jobs whose shard satisfies [pred], by scanning the
   nonce space: the route is a pure function of the request content
   (the id is excluded from the route key), so pinning a job to — or
   away from — a shard is exact, not probabilistic. Disjoint
   predicates over the same source draw from disjoint nonce sets, so
   the content keys never collide. *)
let fr_pinned_jobs ~children ~pred ~prefix source want =
  let rec go acc n nonce =
    if n = want || nonce > 254 then List.rev acc
    else
      let j =
        Job.make ~id:(Printf.sprintf "%s-%d" prefix n) ~nonce (Job.Protect { source })
      in
      if pred (FS.route ~shards:children j) then go (j :: acc) (n + 1) (nonce + 1)
      else go acc n (nonce + 1)
  in
  go [] 0 1

(* per-request metadata that legitimately differs between two reads of
   the same cached result — everything else must be byte-identical *)
let fr_volatile = [ "seq"; "completion"; "attempts"; "worker"; "latency_ms"; "ts_unix" ]

(* id -> rendered payload (volatile metadata dropped), sorted: two
   clients served the same jobs must produce equal maps *)
let fr_payload_map rs =
  List.filter_map
    (fun j ->
      match j with
      | J.Obj fields ->
        Option.map
          (fun id ->
            ( id,
              J.to_string
                (J.Obj
                   (List.filter (fun (k, _) -> not (List.mem k fr_volatile)) fields))
            ))
          (r_str "id" j)
      | _ -> None)
    rs
  |> List.sort compare

(* the shard the routing map loads most, for a given job list *)
let fr_busiest ~children jobs =
  let counts = Array.make children 0 in
  List.iter
    (fun j ->
      let k = FS.route ~shards:children j in
      counts.(k) <- counts.(k) + 1)
    jobs;
  let best = ref 0 in
  Array.iteri (fun k c -> if c > counts.(!best) then best := k) counts;
  !best

(* kill -9 a child mid-stream: the router must detect the death, spawn
   a replacement, redispatch the orphans, and deliver every job exactly
   once — fleet-scope sc_worker_crash. *)
let fsc_child_kill cli source =
  let children = 3 in
  let jobs = fr_protect_jobs ~prefix:"fk" source 24 in
  let victim = fr_busiest ~children jobs in
  let pids = Array.make children (-1) in
  let killed = ref false in
  let on_event = function
    | FR.Child_up (k, pid) -> pids.(k) <- pid
    | FR.Client_response n ->
      if n >= 2 && not !killed then begin
        killed := true;
        try Unix.kill pids.(victim) Sys.sigkill with Unix.Unix_error _ -> ()
      end
    | FR.Child_down _ | FR.Child_rejoin _ -> ()
  in
  let rs, st, _ = fleet_run ~children ~window:4 ~on_event ~cli (fr_lines jobs) in
  let once = fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) jobs) rs in
  let ok =
    !killed && fr_all_done rs && once && st.FR.deaths >= 1 && st.FR.restarts >= 1
    && FR.conserved st
  in
  {
    name = "fleet_child_kill";
    ok;
    detail =
      Printf.sprintf
        "killed=%b all_done=%b answered_once=%b death_detected=%b restarted=%b conserved=%b"
        !killed (fr_all_done rs) once (st.FR.deaths >= 1) (st.FR.restarts >= 1)
        (FR.conserved st);
  }

(* SIGSTOP a child past the watchdog: silence with traffic owed must be
   diagnosed as a hang, the child killed and replaced, its jobs
   redispatched — fleet-scope sc_worker_hang, except a hung process
   (unlike a hung domain) really is killed. *)
let fsc_child_hang cli source =
  let children = 3 in
  let victim = 0 in
  (* pin most of the traffic to the victim so it is guaranteed to owe
     work when the SIGSTOP lands — a lightly-loaded victim could drain
     before the stop and the watchdog would rightly stay silent *)
  let on_v =
    fr_pinned_jobs ~children ~pred:(fun k -> k = victim) ~prefix:"fh" source 12
  in
  let off_v =
    fr_pinned_jobs ~children ~pred:(fun k -> k <> victim) ~prefix:"fho" source 4
  in
  let jobs = on_v @ off_v in
  let pids = Array.make children (-1) in
  let stopped = ref false in
  let on_event = function
    | FR.Child_up (k, pid) -> pids.(k) <- pid
    | FR.Client_response n ->
      if n >= 1 && not !stopped then begin
        stopped := true;
        try Unix.kill pids.(victim) Sys.sigstop with Unix.Unix_error _ -> ()
      end
    | FR.Child_down _ | FR.Child_rejoin _ -> ()
  in
  let rs, st, _ =
    fleet_run ~children ~window:4 ~hang_timeout_ms:400 ~on_event ~cli (fr_lines jobs)
  in
  let once = fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) jobs) rs in
  let ok =
    !stopped && fr_all_done rs && once && st.FR.hangs >= 1 && st.FR.restarts >= 1
    && FR.conserved st
  in
  {
    name = "fleet_child_hang";
    ok;
    detail =
      Printf.sprintf
        "stopped=%b all_done=%b answered_once=%b hang_detected=%b restarted=%b conserved=%b"
        !stopped (fr_all_done rs) once (st.FR.hangs >= 1) (st.FR.restarts >= 1)
        (FR.conserved st);
  }

(* One child's wall clock lies by +12h. Deadlines are monotonic, so
   nothing may time out; the skewed timestamps must still appear in the
   responses (proof the hook was live) — fleet-scope sc_clock_skew. *)
let fsc_clock_skew cli source =
  let children = 3 in
  let skewed = 1 in
  let jobs = fr_protect_jobs ~prefix:"fs" source 16 in
  let routed_to_skewed =
    List.exists (fun j -> FS.route ~shards:children j = skewed) jobs
  in
  let extra k = if k = skewed then [ "--test-wall-skew"; "43200" ] else [] in
  let rs, st, _ =
    fleet_run ~children ~deadline_ms:60_000 ~child_extra_args:extra ~cli (fr_lines jobs)
  in
  let horizon = Unix.gettimeofday () +. 21_600.0 in
  let skew_visible =
    List.exists
      (fun j -> match J.member "ts_unix" j with
        | Some (J.Float ts) -> ts > horizon
        | Some (J.Int ts) -> float_of_int ts > horizon
        | _ -> false)
      rs
  in
  let ok =
    routed_to_skewed && fr_all_done rs && st.FR.timed_out = 0 && skew_visible
    && FR.conserved st
  in
  {
    name = "fleet_clock_skew";
    ok;
    detail =
      Printf.sprintf "all_done=%b timed_out=%d skew_visible=%b conserved=%b"
        (fr_all_done rs) st.FR.timed_out skew_visible (FR.conserved st);
  }

(* Garbage on the client wire is answered by the router itself; the
   children never see a byte that failed to parse — fleet-scope
   sc_wire_corrupt. *)
let fsc_wire_corrupt cli source =
  let bad =
    [
      "this is not JSON at all";
      "{\"id\":\"trunc\",\"op\":\"prot";
      J.to_string
        (J.Obj [ ("id", J.Str "badop"); ("op", J.Str "detonate"); ("source", J.Str source) ]);
      J.to_string (J.Obj [ ("op", J.Str "protect"); ("source", J.Str source) ]);
    ]
  in
  let jobs = fr_protect_jobs ~prefix:"fw" source 6 in
  let rs, st, _ = fleet_run ~cli (bad @ fr_lines jobs) in
  let answered = List.length rs in
  let ok =
    st.FR.received = 10 && st.FR.malformed = 4 && st.FR.submitted = 6 && st.FR.done_ = 6
    && st.FR.deaths = 0 && answered = 10 && FR.conserved st
  in
  {
    name = "fleet_wire_corrupt";
    ok;
    detail =
      Printf.sprintf "received=%d malformed=%d done=%d answered=%d children_untouched=%b"
        st.FR.received st.FR.malformed st.FR.done_ answered (st.FR.deaths = 0);
  }

(* A compromised child lies about every digest. With auditing on every
   distinct key, the router's second opinion catches the first lie, the
   third-shard vote convicts the liar, and the client only ever sees
   digests that match the single-process oracle — the §13 claim that a
   poisoned child cannot serve a wrong image. *)
let fsc_digest_quarantine cli source =
  let children = 3 in
  let liar = 2 in
  let jobs = fr_protect_jobs ~prefix:"fq" source 18 in
  let routed_to_liar = List.exists (fun j -> FS.route ~shards:children j = liar) jobs in
  let oracle = Hashtbl.create 32 in
  let ors, _ = Engine.run_batch { Engine.default_config with Engine.workers = 1 } jobs in
  List.iter
    (fun (r : Job.response) ->
      match r.Job.status with
      | Job.Done (Job.Protected { digest; _ }) -> Hashtbl.replace oracle r.Job.id digest
      | _ -> ())
    ors;
  let extra k = if k = liar then [ "--test-flip-digest" ] else [] in
  let rs, st, _ =
    fleet_run ~children ~audit_every:1 ~child_extra_args:extra ~cli (fr_lines jobs)
  in
  let digests_honest =
    rs <> []
    && List.for_all
         (fun j ->
           match (r_str "id" j, r_str "digest" j) with
           | Some id, Some d -> Hashtbl.find_opt oracle id = Some d
           | _ -> false)
         rs
  in
  let ok =
    routed_to_liar && fr_all_done rs && digests_honest && st.FR.digest_conflicts >= 1
    && st.FR.quarantines >= 1 && FR.conserved st
  in
  {
    name = "fleet_digest_quarantine";
    ok;
    detail =
      Printf.sprintf
        "all_done=%b digests_honest=%b lie_caught=%b liar_quarantined=%b conserved=%b"
        (fr_all_done rs) digests_honest
        (st.FR.digest_conflicts >= 1)
        (st.FR.quarantines >= 1)
        (FR.conserved st);
  }

(* A poison job kills whichever child executes it. Route stability
   sends it back to the same shard until its incarnation budget is
   spent; the third consecutive death trips the process-scope breaker,
   the shard is quarantined, and its healthy traffic re-sheds and
   completes — fleet-scope sc_breaker. window=1 keeps the cascade
   deterministic: the poison always dies alone. *)
let fsc_breaker_reshed cli source =
  let children = 3 in
  let marker = "FLEET-POISON-7" in
  let poison =
    Job.make ~id:"poison" ~nonce:97 (Job.Protect { source = source ^ "\n" ^ marker })
  in
  let pshard = FS.route ~shards:children poison in
  (* half the healthy traffic pinned onto the poison's shard (so the
     quarantine has live work to re-shed), half pinned elsewhere (so
     the rest of the fleet visibly keeps serving through the cascade) *)
  let on_p =
    fr_pinned_jobs ~children ~pred:(fun k -> k = pshard) ~prefix:"fb" source 6
  in
  let off_p =
    fr_pinned_jobs ~children ~pred:(fun k -> k <> pshard) ~prefix:"fbo" source 6
  in
  let jobs = on_p @ off_p in
  let shares_shard = on_p <> [] in
  let extra _ = [ "--test-exit"; marker ] in
  let rs, st, _ =
    fleet_run ~children ~window:1 ~breaker:3 ~redispatch_limit:2 ~child_extra_args:extra
      ~cli
      (fr_lines (poison :: jobs))
  in
  let poison_failed =
    List.exists
      (fun j -> r_str "id" j = Some "poison" && r_status j = "failed")
      rs
  in
  let healthy_done =
    List.for_all
      (fun j -> r_str "id" j = Some "poison" || r_status j = "done")
      rs
    && List.length rs = 13
  in
  let ok =
    shares_shard && poison_failed && healthy_done && st.FR.quarantines >= 1
    && st.FR.deaths = 3 && st.FR.resheds >= 1 && FR.conserved st
  in
  {
    name = "fleet_breaker_reshed";
    ok;
    detail =
      Printf.sprintf
        "poison_failed=%b healthy_done=%b breaker_tripped=%b deaths=%d reshed=%b conserved=%b"
        poison_failed healthy_done
        (st.FR.quarantines >= 1)
        st.FR.deaths (st.FR.resheds >= 1) (FR.conserved st);
  }

(* Poison one shard's persistent store between fleet runs: the fresh
   fleet must detect every tampered artifact (the poisoned child's
   disk-corrupt counter moves), self-repair by re-protecting, and serve
   digests identical to the clean run — fleet-scope
   sc_disk_store_tamper. *)
let fsc_store_poison cli source =
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_file "sofia_fleet_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let children = 3 in
      let poisoned = 1 in
      let jobs = fr_protect_jobs ~prefix:"fp" source 12 in
      let routed =
        List.exists (fun j -> FS.route ~shards:children j = poisoned) jobs
      in
      let digests rs =
        List.filter_map
          (fun j ->
            match (r_str "id" j, r_str "digest" j) with
            | Some id, Some d -> Some (id, d)
            | _ -> None)
          rs
        |> List.sort compare
      in
      let rs1, st1, _ = fleet_run ~children ~store_dir:dir ~cli (fr_lines jobs) in
      let shard_dir = Filename.concat dir (Printf.sprintf "shard-%d" poisoned) in
      let tampered = ref 0 in
      (if Sys.file_exists shard_dir && Sys.is_directory shard_dir then
         Array.iter
           (fun n ->
             let p = Filename.concat shard_dir n in
             if not (Sys.is_directory p) then begin
               let ic = open_in_bin p in
               let b = Bytes.create (in_channel_length ic) in
               really_input ic b 0 (Bytes.length b);
               close_in ic;
               if Bytes.length b > 0 then begin
                 let i = Bytes.length b / 2 in
                 Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
                 let oc = open_out_bin p in
                 output_bytes oc b;
                 close_out oc;
                 incr tampered
               end
             end)
           (Sys.readdir shard_dir));
      let rs2, st2, doc2 = fleet_run ~children ~store_dir:dir ~cli (fr_lines jobs) in
      let corrupt_detected =
        match J.member "children_metrics" doc2 with
        | Some (J.List kids) ->
          List.exists
            (fun kid ->
              J.member "shard" kid = Some (J.Int poisoned)
              &&
              match
                Option.bind (J.member "metrics" kid) (fun m ->
                    Option.bind (J.member "disk" m) (J.member "corrupt"))
              with
              | Some (J.Int n) -> n > 0
              | _ -> false)
            kids
        | _ -> false
      in
      let stable = digests rs1 <> [] && digests rs1 = digests rs2 in
      let ok =
        routed && !tampered > 0 && fr_all_done rs1 && fr_all_done rs2 && stable
        && corrupt_detected && FR.conserved st1 && FR.conserved st2
      in
      {
        name = "fleet_store_poison";
        ok;
        detail =
          Printf.sprintf
            "all_done=%b tampered_detected=%b digests_stable=%b conserved=%b"
            (fr_all_done rs1 && fr_all_done rs2)
            corrupt_detected stable
            (FR.conserved st1 && FR.conserved st2);
      })

(* Four clients hammer the same fleet concurrently with the same job
   set (PR 9): fair dispatch answers every client exactly once,
   cross-client replay/coalescing keeps each distinct job on one child
   only, and the §13 byte-identity guarantee holds one level up —
   every client reads the same payload bytes for the same job. *)
let fsc_client_flood cli source =
  let nclients = 4 in
  let jobs = fr_protect_jobs ~prefix:"ff" source 25 in
  let lines = fr_lines jobs in
  let rss, st, _ = fleet_run_clients ~cli (List.init nclients (fun _ -> lines)) in
  let ids = List.map (fun (j : Job.request) -> j.Job.id) jobs in
  let each_once = rss <> [] && List.for_all (fun rs -> fr_ids_once ids rs) rss in
  let all_done = List.for_all fr_all_done rss in
  let identical =
    match List.map fr_payload_map rss with
    | [] -> false
    | m0 :: rest -> m0 <> [] && List.for_all (fun m -> m = m0) rest
  in
  (* 100 requests, but only the 25 distinct jobs ever reach a child *)
  let routed = Array.fold_left (fun a ss -> a + ss.FR.ss_routed) 0 st.FR.shards in
  (* every non-primary request is served from the cache tier — parked
     behind the in-flight primary (coalesced, then released as a
     replay) or replayed outright — so replays counts all 75 *)
  let deduped = routed = 25 && st.FR.replays = 75 in
  let ok =
    st.FR.received = 100 && each_once && all_done && identical && deduped
    && FR.conserved st
  in
  {
    name = "fleet_client_flood";
    ok;
    detail =
      Printf.sprintf
        "received=%d each_client_once=%b all_done=%b payloads_identical=%b \
         routed=%d replays=%d coalesced=%d conserved=%b"
        st.FR.received each_once all_done identical routed st.FR.replays
        st.FR.coalesced (FR.conserved st);
  }

(* A slow-loris client sends a burst of duplicates and never reads a
   byte back: its responses back up behind a full pipe until the linger
   expires and the router drops it — while a healthy client on the same
   fleet is answered in full. Nothing leaks: the dropped client's jobs
   still settle internally and the conservation law holds. *)
let fsc_slow_loris cli source =
  let dup =
    J.to_string
      (Job.request_to_json (Job.make ~id:"loris" ~nonce:33 (Job.Protect { source })))
  in
  let good_jobs = fr_protect_jobs ~prefix:"fg" source 8 in
  let slow_in = Filename.temp_file "sofia_loris" ".ndjson" in
  let good_in = Filename.temp_file "sofia_loris_g" ".ndjson" in
  let good_out = Filename.temp_file "sofia_loris_g" ".out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ slow_in; good_in; good_out ])
    (fun () ->
      let write_lines path lines =
        let oc = open_out path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc
      in
      (* ~1200 replies cannot fit a ~64KB pipe nobody drains *)
      write_lines slow_in (List.init 1_200 (fun _ -> dup));
      write_lines good_in (fr_lines good_jobs);
      let sfd = Unix.openfile slow_in [ Unix.O_RDONLY ] 0 in
      let pr, pw = Unix.pipe ~cloexec:true () in
      let gin = Unix.openfile good_in [ Unix.O_RDONLY ] 0 in
      let gout = Unix.openfile good_out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let cfg = fleet_cfg ~client_linger_ms:200 ~cli () in
      let stats, _ =
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              [ sfd; pr; pw; gin; gout ])
          (fun () -> FR.run_clients cfg ~clients:[ (sfd, pw); (gin, gout) ])
      in
      let rs = read_responses good_out in
      let once =
        fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) good_jobs) rs
      in
      let ok =
        stats.FR.slow_client_drops = 1 && once && fr_all_done rs
        && FR.conserved stats
      in
      {
        name = "fleet_slow_loris";
        ok;
        detail =
          Printf.sprintf
            "slow_dropped=%b healthy_all_done=%b answered_once=%b conserved=%b"
            (stats.FR.slow_client_drops = 1)
            (fr_all_done rs) once (FR.conserved stats);
      })

(* Breaker-quarantine one shard with a poison job, then watch it earn
   its way back under live traffic: after the cooldown the router
   restarts the shard on probation, two clean probes re-admit it, and a
   fresh wave of jobs for its key range routes home again — a breaker
   quarantine is a state, not a sentence (integrity quarantines stay
   permanent: fleet_digest_quarantine). The post-rejoin wave is fed by
   a watchdog domain triggered by the Child_rejoin event, with a
   timeout so a rejoin bug fails the scenario instead of wedging it. *)
let fsc_rejoin_reshed cli source =
  let children = 2 in
  let marker = "FLEET-REJOIN-9" in
  let psource = source ^ "\n; " ^ marker in
  let poison = Job.make ~id:"poison" ~nonce:41 (Job.Protect { source = psource }) in
  let victim = FS.route ~shards:children poison in
  let during =
    fr_pinned_jobs ~children ~pred:(fun k -> k = victim) ~prefix:"fj" source 4
  in
  let elsewhere =
    fr_pinned_jobs ~children ~pred:(fun k -> k <> victim) ~prefix:"fjo" source 4
  in
  (* a distinct source gives the post-rejoin wave distinct content
     keys, so it really dispatches to the rejoined shard instead of
     replaying from the cache *)
  let post =
    fr_pinned_jobs ~children
      ~pred:(fun k -> k = victim)
      ~prefix:"fjp" (source ^ "\n; after-rejoin") 4
  in
  let out_path = Filename.temp_file "sofia_rejoin" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let pr, pw = Unix.pipe ~cloexec:true () in
      let cout = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let send jobs =
        List.iter
          (fun l ->
            let line = l ^ "\n" in
            ignore (Unix.write_substring pw line 0 (String.length line)))
          (fr_lines jobs)
      in
      (* -1 = not rejoined yet; >= 0 = victim's routed count at rejoin *)
      let rejoin_routed = Atomic.make (-1) in
      let on_event = function
        | FR.Child_rejoin (k, routed) when k = victim ->
          ignore (Atomic.compare_and_set rejoin_routed (-1) routed)
        | _ -> ()
      in
      (* the feeder owns pw and does *all* the writing — the request
         wave can exceed the pipe capacity, so it must be written while
         the router is already reading, never from the router's own
         thread. It sends the post-rejoin wave when the event lands (or
         gives up after 20s) and always closes, so the router always
         sees client EOF *)
      let feeder =
        Domain.spawn (fun () ->
            send ((poison :: during) @ elsewhere);
            let deadline = Unix.gettimeofday () +. 20.0 in
            let rec wait () =
              if Atomic.get rejoin_routed >= 0 then true
              else if Unix.gettimeofday () > deadline then false
              else begin
                Unix.sleepf 0.01;
                wait ()
              end
            in
            let rejoined = wait () in
            if rejoined then send post;
            (try Unix.close pw with Unix.Unix_error _ -> ());
            rejoined)
      in
      let extra k = if k = victim then [ "--test-exit"; marker ] else [] in
      let cfg =
        fleet_cfg ~children ~window:1 ~breaker:1 ~probe_interval_ms:20
          ~rejoin_cooldown_ms:150 ~rejoin_probes:2 ~child_extra_args:extra
          ~on_event ~cli ()
      in
      let stats, _ =
        Fun.protect
          ~finally:(fun () ->
            ignore (Domain.join feeder);
            (try Unix.close pr with Unix.Unix_error _ -> ());
            try Unix.close cout with Unix.Unix_error _ -> ())
          (fun () -> FR.run cfg ~client_in:pr ~client_out:cout)
      in
      let rs = read_responses out_path in
      let all = (poison :: during) @ elsewhere @ post in
      let once = fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) all) rs in
      let snap = Atomic.get rejoin_routed in
      let back_home = snap >= 0 && stats.FR.shards.(victim).FR.ss_routed > snap in
      let ok =
        fr_all_done rs && once && stats.FR.deaths = 1 && stats.FR.quar_breaker = 1
        && stats.FR.quar_integrity = 0 && stats.FR.rejoins = 1
        && stats.FR.resheds >= 1 && back_home && FR.conserved stats
      in
      {
        name = "fleet_rejoin_reshed";
        ok;
        detail =
          Printf.sprintf
            "all_done=%b answered_once=%b quarantined=%b rejoined=%b reshed=%b traffic_back_home=%b conserved=%b"
            (fr_all_done rs) once
            (stats.FR.quar_breaker = 1)
            (stats.FR.rejoins = 1)
            (stats.FR.resheds >= 1)
            back_home (FR.conserved stats);
      })

(* Poison jobs that kill every incarnation of their home shard: the
   exponential backoff paces the restarts and the restart budget bounds
   them — four deaths cost exactly three restarts before the shard is
   quarantined on the breaker cause, while the other shard keeps
   serving. A restart storm is contained, never a hot loop. window=1
   keeps the death cascade deterministic. *)
let fsc_restart_storm cli source =
  let children = 2 in
  let victim = 0 in
  let marker = "FLEET-STORM-4" in
  let psource = source ^ "\n; " ^ marker in
  let poisons =
    fr_pinned_jobs ~children ~pred:(fun k -> k = victim) ~prefix:"fx" psource 2
  in
  let healthy =
    fr_pinned_jobs ~children ~pred:(fun k -> k <> victim) ~prefix:"fxo" source 4
  in
  let extra k = if k = victim then [ "--test-exit"; marker ] else [] in
  let rs, st, _ =
    fleet_run ~children ~window:1 ~breaker:0 ~restart_backoff_ms:10
      ~restart_budget:3 ~rejoin_cooldown_ms:0 ~child_extra_args:extra ~cli
      (fr_lines (poisons @ healthy))
  in
  let once =
    fr_ids_once (List.map (fun (j : Job.request) -> j.Job.id) (poisons @ healthy)) rs
  in
  (* the first poison burns its incarnation budget and fails; the
     second is re-shed off the quarantined shard and completes *)
  let failed_count =
    List.length (List.filter (fun j -> r_status j = "failed") rs)
  in
  let healthy_done =
    List.for_all
      (fun j -> r_status j = "failed" || r_status j = "done")
      rs
    && List.length rs = 6
  in
  let bounded =
    st.FR.deaths = 4 && st.FR.restarts = 3 && st.FR.backoffs = 3
    && st.FR.quar_breaker = 1
  in
  let ok =
    once && healthy_done && failed_count = 1 && bounded && st.FR.resheds >= 1
    && FR.conserved st
  in
  {
    name = "fleet_restart_storm";
    ok;
    detail =
      Printf.sprintf
        "deaths=%d restarts=%d backoffs=%d budget_quarantine=%b reshed=%b answered_once=%b conserved=%b"
        st.FR.deaths st.FR.restarts st.FR.backoffs
        (st.FR.quar_breaker = 1)
        (st.FR.resheds >= 1)
        once (FR.conserved st);
  }

(* The replay cache outlives the router (PR 9): a fresh fleet over the
   same replay_dir serves every duplicate straight from disk without
   touching a child. One sealed entry is tampered between the runs: the
   zero-trust reload re-derives the payload fingerprint, counts exactly
   one corrupt miss, and re-protects — spliced bytes are never served,
   and both runs hand out identical payloads. *)
let fsc_replay_warm_tamper cli source =
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_file "sofia_fleet_replay" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let jobs = fr_protect_jobs ~prefix:"fwr" source 8 in
      let digests rs =
        List.filter_map
          (fun j ->
            match (r_str "id" j, r_str "digest" j) with
            | Some id, Some d -> Some (id, d)
            | _ -> None)
          rs
        |> List.sort compare
      in
      let rs1, st1, _ = fleet_run ~replay_dir:dir ~cli (fr_lines jobs) in
      let tampered =
        match
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun n -> not (Sys.is_directory (Filename.concat dir n)))
          |> List.sort compare
        with
        | [] -> false
        | n :: _ ->
          let p = Filename.concat dir n in
          let ic = open_in_bin p in
          let b = Bytes.create (in_channel_length ic) in
          really_input ic b 0 (Bytes.length b);
          close_in ic;
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          let oc = open_out_bin p in
          output_bytes oc b;
          close_out oc;
          true
      in
      let rs2, st2, doc2 = fleet_run ~replay_dir:dir ~cli (fr_lines jobs) in
      let corrupt_counted =
        match Option.bind (J.member "replay_store" doc2) (J.member "corrupt") with
        | Some (J.Int n) -> n >= 1
        | _ -> false
      in
      let stable = digests rs1 <> [] && digests rs1 = digests rs2 in
      let routed st =
        Array.fold_left (fun a ss -> a + ss.FR.ss_routed) 0 st.FR.shards
      in
      let warm =
        st1.FR.disk_replays = 0 && routed st1 = 8 && st2.FR.disk_replays = 7
        && routed st2 = 1
      in
      let ok =
        tampered && fr_all_done rs1 && fr_all_done rs2 && warm && corrupt_counted
        && stable && FR.conserved st1 && FR.conserved st2
      in
      {
        name = "fleet_replay_warm_tamper";
        ok;
        detail =
          Printf.sprintf
            "all_done=%b disk_replays=%d/7 tamper_detected=%b payloads_stable=%b conserved=%b"
            (fr_all_done rs1 && fr_all_done rs2)
            st2.FR.disk_replays corrupt_counted stable
            (FR.conserved st1 && FR.conserved st2);
      })

let fleet_checks workloads =
  match workloads with
  | [] -> []
  | (w0 : W.t) :: _ -> (
    let source = w0.W.source in
    match FC.find_cli () with
    | None ->
      [
        {
          name = "fleet";
          ok = true;
          detail = "skipped: sofia_cli binary not found (set SOFIA_CLI)";
        };
      ]
    | Some cli ->
      [
        fsc_child_kill cli source;
        fsc_child_hang cli source;
        fsc_clock_skew cli source;
        fsc_wire_corrupt cli source;
        fsc_digest_quarantine cli source;
        fsc_breaker_reshed cli source;
        fsc_store_poison cli source;
        fsc_client_flood cli source;
        fsc_slow_loris cli source;
        fsc_rejoin_reshed cli source;
        fsc_restart_storm cli source;
        fsc_replay_warm_tamper cli source;
      ])

(* ------------------------------------------------------------------ *)
(* Driver, summaries, serialisation                                    *)
(* ------------------------------------------------------------------ *)

let run ?(obs = Obs.none) ?(fuel = default_fuel) ?(classes = Site.all)
    ?(backends = [ Sofia_transform.Backend_id.Sofia ]) ?(with_service = true)
    ?with_fleet ?workloads ?(engine = Sofia_cpu.Run_config.Fast) ?(multi_fault = 1)
    ~trials ~seed () =
  if multi_fault < 1 then invalid_arg "Campaign.run: multi_fault must be >= 1";
  (* the fleet wall rides with the service wall unless asked otherwise *)
  let with_fleet = Option.value ~default:with_service with_fleet in
  let workloads =
    match workloads with Some ws -> ws | None -> Sofia_workloads.Registry.all ()
  in
  let config = { (bounded_config fuel) with Sofia_cpu.Run_config.engine } in
  let rng = Prng.create ~seed in
  let cells =
    List.concat_map
      (fun backend ->
        List.concat_map
          (fun (w : W.t) ->
            let key_seed = Int64.logxor seed (Store.hash_string w.W.name) in
            let p = profile ~config ~backend ~key_seed w in
            List.map
              (fun clazz ->
                run_cell ~config ~rng ~multi:multi_fault ~obs ~p ~backend
                  ~workload:w.W.name clazz ~trials)
              classes)
          workloads)
      backends
  in
  (* the service/fleet walls exercise the wire and supervision layers,
     which are backend-agnostic — run them once, not once per backend *)
  let service =
    (if with_service then service_checks workloads else [])
    @ (if with_fleet then fleet_checks workloads else [])
  in
  { seed; trials_per_cell = trials; multi_fault; fuel; backends; cells; service }

(* one aggregated cell per (backend, class), over every workload *)
let by_backend_class r =
  List.concat_map
    (fun backend ->
      List.filter_map
        (fun clazz ->
          let cs =
            List.filter (fun c -> c.clazz = clazz && c.backend = backend) r.cells
          in
          if cs = [] then None
          else
            Some
              (List.fold_left
                 (fun acc c ->
                   {
                     acc with
                     trials = acc.trials + c.trials;
                     detected = acc.detected + c.detected;
                     masked = acc.masked + c.masked;
                     corrupted = acc.corrupted + c.corrupted;
                     hung = acc.hung + c.hung;
                     lat_measured = acc.lat_measured + c.lat_measured;
                     lat_total = acc.lat_total + c.lat_total;
                     lat_max = max acc.lat_max c.lat_max;
                   })
                 (zero_cell ~backend clazz "*") cs))
        Site.all)
    r.backends

let by_class = by_backend_class

let in_model_escapes r =
  List.fold_left
    (fun acc c ->
      if Site.in_model c.clazz then acc + c.masked + c.corrupted + c.hung else acc)
    0 r.cells

let in_model_trials r =
  List.fold_left
    (fun (d, t) c ->
      if Site.in_model c.clazz then (d + c.detected, t + c.trials) else (d, t))
    (0, 0) r.cells

let service_ok r = List.for_all (fun s -> s.ok) r.service

let passed r = in_model_escapes r = 0 && service_ok r

let lat_mean c =
  if c.lat_measured = 0 then 0.0
  else float_of_int c.lat_total /. float_of_int c.lat_measured

let cell_json c =
  J.Obj
    [
      ("class", J.Str (Site.name c.clazz));
      ("backend", J.Str (Sofia_transform.Backend_id.name c.backend));
      ("workload", J.Str c.workload);
      ("in_model", J.Bool (Site.in_model c.clazz));
      ("applicable", J.Bool c.applicable);
      ("trials", J.Int c.trials);
      ("detected", J.Int c.detected);
      ("masked", J.Int c.masked);
      ("corrupted", J.Int c.corrupted);
      ("hung", J.Int c.hung);
      ( "latency_insns",
        J.Obj
          [
            ("measured", J.Int c.lat_measured);
            ("mean", J.Float (lat_mean c));
            ("max", J.Int c.lat_max);
          ] );
    ]

(* per-backend in-model rollup: under --multi-fault the interesting
   question is whether either backend's detection degrades as faults
   stack — report each backend's rate side by side so a degradation is
   a one-line diff, not a matrix dig *)
let backend_summary_json r =
  J.List
    (List.map
       (fun backend ->
         let d, tr, e =
           List.fold_left
             (fun (d, tr, e) c ->
               if c.backend = backend && Site.in_model c.clazz then
                 (d + c.detected, tr + c.trials, e + c.masked + c.corrupted + c.hung)
               else (d, tr, e))
             (0, 0, 0) r.cells
         in
         J.Obj
           [
             ("backend", J.Str (Sofia_transform.Backend_id.name backend));
             ("in_model_trials", J.Int tr);
             ("in_model_detected", J.Int d);
             ( "in_model_detection_rate",
               J.Float (if tr = 0 then 1.0 else float_of_int d /. float_of_int tr) );
             ("in_model_escapes", J.Int e);
           ])
       r.backends)

let to_json r =
  let d, t = in_model_trials r in
  J.Obj
    [
      ("schema", J.Str "sofia-fault-campaign/3");
      ("seed", J.Str (Printf.sprintf "0x%Lx" r.seed));
      ("trials_per_cell", J.Int r.trials_per_cell);
      ("faults_per_trial", J.Int r.multi_fault);
      ("fuel", J.Int r.fuel);
      ( "backends",
        J.List
          (List.map
             (fun b -> J.Str (Sofia_transform.Backend_id.name b))
             r.backends) );
      ( "classes",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.Str (Site.name c));
                   ("in_model", J.Bool (Site.in_model c));
                   ("description", J.Str (Site.describe c));
                 ])
             Site.all) );
      ("matrix", J.List (List.map cell_json r.cells));
      ("by_class", J.List (List.map cell_json (by_class r)));
      ("by_backend", backend_summary_json r);
      ( "summary",
        J.Obj
          [
            ("in_model_trials", J.Int t);
            ("in_model_detected", J.Int d);
            ( "in_model_detection_rate",
              J.Float (if t = 0 then 1.0 else float_of_int d /. float_of_int t) );
            ("in_model_escapes", J.Int (in_model_escapes r));
            ("service_ok", J.Bool (service_ok r));
            ("passed", J.Bool (passed r));
          ] );
      ( "service",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [ ("name", J.Str s.name); ("ok", J.Bool s.ok);
                   ("detail", J.Str s.detail) ])
             r.service) );
    ]

let pp fmt r =
  let d, t = in_model_trials r in
  Format.fprintf fmt
    "fault campaign  seed=0x%Lx  trials/cell=%d  faults/trial=%d  backends=%s@."
    r.seed r.trials_per_cell r.multi_fault
    (String.concat "," (List.map Sofia_transform.Backend_id.name r.backends));
  Format.fprintf fmt "%-7s %-16s %8s %9s %7s %10s %6s %12s %8s@." "backend" "class"
    "trials" "detected" "masked" "corrupted" "hung" "latency-mean" "lat-max";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-7s %-16s %8d %9d %7d %10d %6d %12.2f %8d%s%s@."
        (Sofia_transform.Backend_id.name c.backend)
        (Site.name c.clazz) c.trials c.detected c.masked c.corrupted c.hung
        (lat_mean c) c.lat_max
        (if Site.in_model c.clazz then "" else "  [out of model]")
        (if c.applicable then "" else "  [not applicable]"))
    (by_class r);
  Format.fprintf fmt "in-model: %d/%d detected, %d escape(s)@." d t (in_model_escapes r);
  List.iter
    (fun s ->
      Format.fprintf fmt "service %-20s %s  %s@." s.name
        (if s.ok then "OK " else "FAIL")
        s.detail)
    r.service
