module Machine = Sofia_cpu.Machine
module Runner = Sofia_cpu.Sofia_runner
module Image = Sofia_transform.Image
module Block = Sofia_transform.Block
module Obs = Sofia_obs.Obs
module Event = Sofia_obs.Event
module Trace = Sofia_obs.Trace
module J = Sofia_obs.Json
module Prng = Sofia_util.Prng
module W = Sofia_workloads.Workload
module Engine = Sofia_service.Engine
module Job = Sofia_service.Job
module Store = Sofia_service.Store
module Wire = Sofia_service.Wire
module Svc_metrics = Sofia_service.Svc_metrics

type verdict = Detected | Masked | Corrupted | Hung

let verdict_name = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Corrupted -> "corrupted"
  | Hung -> "hung"

type cell = {
  clazz : Site.clazz;
  workload : string;
  trials : int;
  detected : int;
  masked : int;
  corrupted : int;
  hung : int;
  lat_measured : int;
  lat_total : int;
  lat_max : int;
}

type service_check = { name : string; ok : bool; detail : string }

type report = {
  seed : int64;
  trials_per_cell : int;
  fuel : int;
  cells : cell list;
  service : service_check list;
}

let default_fuel = 2_000_000

let bounded_config fuel =
  { Sofia_cpu.Run_config.default with Sofia_cpu.Run_config.fuel }

(* ------------------------------------------------------------------ *)
(* Clean-run profile: faults are only injected into state the clean    *)
(* execution actually consumed, so every trial exercises the detection *)
(* path and an escape is real — never a fault parked in dead code.     *)
(* ------------------------------------------------------------------ *)

type profile = {
  keys : Sofia_crypto.Keys.t;
  image : Image.t;
  clean : Machine.run_result;
  visited : Image.block array;  (* blocks retired from, in first-entry order *)
  visited_mux : Image.block array;
  legit : (int * int, unit) Hashtbl.t;  (* static (prev_pc, entry port) edges *)
}

let profile ~config ~key_seed (w : W.t) =
  let keys = Sofia_crypto.Keys.generate ~seed:key_seed in
  let image = Sofia_transform.Transform.protect_exn ~keys ~nonce:1 (W.assemble w) in
  let text_base = image.Image.text_base in
  let seen = Hashtbl.create 64 in
  let bases = ref [] in
  let on_retire ~pc ~insn:_ =
    let base = pc - ((pc - text_base) mod Block.size_bytes) in
    if not (Hashtbl.mem seen base) then begin
      Hashtbl.add seen base ();
      bases := base :: !bases
    end
  in
  let clean = Runner.run ~config ~on_retire ~keys image in
  let visited =
    Array.of_list (List.filter_map (Image.block_of_address image) (List.rev !bases))
  in
  let visited_mux =
    Array.of_list
      (List.filter (fun b -> b.Image.kind = Block.Mux) (Array.to_list visited))
  in
  let legit = Hashtbl.create 64 in
  Array.iter
    (fun (b : Image.block) ->
      let ports = Block.port_offsets b.Image.kind in
      List.iteri
        (fun i prev -> Hashtbl.replace legit (prev, b.Image.base + List.nth ports i) ())
        b.Image.entry_prev_pcs)
    image.Image.blocks;
  { keys; image; clean; visited; visited_mux; legit }

let classify ~(clean : Machine.run_result) (r : Machine.run_result) =
  match r.Machine.outcome with
  | Machine.Cpu_reset _ -> Detected
  | Machine.Out_of_fuel -> Hung
  | Machine.Halted _ ->
    if
      r.Machine.outcome = clean.Machine.outcome
      && r.Machine.outputs = clean.Machine.outputs
      && String.equal r.Machine.output_text clean.Machine.output_text
    then Masked
    else Corrupted

(* Detection latency in retired instructions: walk the tampered run's
   trace tail back from the Reset event to the Block_fetch that
   consumed the fault, counting Retire events in between. SOFIA's
   headline guarantee — verification before the Memory-Access stage —
   means this must be 0 for every in-model detection. [None] when the
   ring wrapped past the fetch (cannot happen for latency-0 resets). *)
let detection_latency trace =
  let evs = Array.of_list (Trace.to_list trace) in
  let reset = ref None in
  Array.iteri (fun i e -> match e with Event.Reset _ -> reset := Some i | _ -> ()) evs;
  match !reset with
  | None -> None
  | Some ri ->
    let rec back i acc =
      if i < 0 then if Trace.dropped trace > 0 then None else Some acc
      else
        match evs.(i) with
        | Event.Block_fetch _ -> Some acc
        | Event.Retire _ -> back (i - 1) (acc + 1)
        | _ -> back (i - 1) acc
    in
    back (ri - 1) 0

(* ------------------------------------------------------------------ *)
(* One trial                                                           *)
(* ------------------------------------------------------------------ *)

let offsets_for clazz (kind : Block.kind) =
  let range lo hi = List.init (((hi - lo) / 4) + 1) (fun i -> lo + (4 * i)) in
  match clazz with
  | Site.Insn_flip -> range (Block.first_insn_offset kind) Block.exit_offset
  | Site.Mac_flip -> (
    (* a Mux block's M1 copies belong to one path each; only the shared
       M2 word is MAC-consumed by every entry *)
    match kind with Block.Exec -> [ 0; 4 ] | Block.Mux -> [ 8 ])
  | Site.Keystream -> (
    match kind with
    | Block.Exec -> range 0 Block.exit_offset
    | Block.Mux -> range 8 Block.exit_offset)
  | _ -> invalid_arg "offsets_for"

let image_trial ~config ~(p : profile) site =
  let tampered = Site.apply p.image site in
  let trace = Trace.create () in
  let obs = Obs.create ~trace () in
  let r = Runner.run ~config ~obs ~keys:p.keys tampered in
  let v = classify ~clean:p.clean r in
  let lat = if v = Detected then detection_latency trace else None in
  (site, v, lat)

(* [None] = the class has no applicable site in this workload (e.g. no
   multiplexor block on the executed path) — recorded as zero trials,
   never as an escape. *)
let one_trial ~config ~rng ~(p : profile) clazz =
  match clazz with
  | (Site.Insn_flip | Site.Mac_flip | Site.Keystream) as cz ->
    if Array.length p.visited = 0 then None
    else begin
      let b = p.visited.(Prng.int_below rng (Array.length p.visited)) in
      let offs = offsets_for cz b.Image.kind in
      let off = List.nth offs (Prng.int_below rng (List.length offs)) in
      let address = b.Image.base + off in
      let mask =
        match cz with
        | Site.Keystream ->
          let rec nz () =
            let m = Prng.next32 rng in
            if m = 0 then nz () else m
          in
          nz ()
        | _ -> 1 lsl Prng.int_below rng 32
      in
      Some (image_trial ~config ~p (Site.Word_xor { address; mask }))
    end
  | Site.Mux_swap ->
    if Array.length p.visited_mux = 0 then None
    else begin
      let b = p.visited_mux.(Prng.int_below rng (Array.length p.visited_mux)) in
      Some
        (image_trial ~config ~p
           (Site.Word_swap { a = b.Image.base; b = b.Image.base + 4 }))
    end
  | Site.Edge_redirect ->
    if Array.length p.visited = 0 then None
    else begin
      let nblocks = Array.length p.image.Image.blocks in
      let rec pick k =
        if k <= 0 then None
        else begin
          let src = p.visited.(Prng.int_below rng (Array.length p.visited)) in
          let from_exit = src.Image.base + Block.exit_offset in
          let tgt = p.image.Image.blocks.(Prng.int_below rng nblocks) in
          let target = tgt.Image.base + (4 * Prng.int_below rng 8) in
          if Hashtbl.mem p.legit (from_exit, target) then pick (k - 1)
          else Some (from_exit, target)
        end
      in
      match pick 64 with
      | None -> None
      | Some (from_exit, target) ->
        let site = Site.Redirect { from_exit; target } in
        (match
           Runner.fetch_block ~keys:p.keys ~image:p.image ~target ~prev_pc:from_exit
         with
         | Runner.Fetch_violation _ ->
           (* rejected in the frontend: nothing ever retires *)
           Some (site, Detected, Some 0)
         | Runner.Block_ok _ -> Some (site, Corrupted, None))
    end
  | Site.Fetch_transient ->
    let fetches = p.clean.Machine.stats.Machine.blocks_entered in
    let fetch = Prng.int_in rng ~lo:1 ~hi:(max 1 fetches) in
    let bit = Prng.int_below rng 256 in
    let site = Site.Transient { fetch; bit } in
    let trace = Trace.create () in
    let obs = Obs.create ~trace () in
    let r = Runner.run ~config ~obs ~fault:(fetch, bit) ~keys:p.keys p.image in
    let v = classify ~clean:p.clean r in
    let lat = if v = Detected then detection_latency trace else None in
    Some (site, v, lat)

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let zero_cell clazz workload =
  { clazz; workload; trials = 0; detected = 0; masked = 0; corrupted = 0; hung = 0;
    lat_measured = 0; lat_total = 0; lat_max = 0 }

let add_cell c v lat =
  let c = { c with trials = c.trials + 1 } in
  let c =
    match v with
    | Detected -> { c with detected = c.detected + 1 }
    | Masked -> { c with masked = c.masked + 1 }
    | Corrupted -> { c with corrupted = c.corrupted + 1 }
    | Hung -> { c with hung = c.hung + 1 }
  in
  match lat with
  | Some l ->
    { c with lat_measured = c.lat_measured + 1; lat_total = c.lat_total + l;
      lat_max = max c.lat_max l }
  | None -> c

let run_cell ~config ~rng ~obs ~p ~workload clazz ~trials =
  let c = ref (zero_cell clazz workload) in
  for _ = 1 to trials do
    match one_trial ~config ~rng ~p clazz with
    | None -> ()
    | Some (_site, v, lat) ->
      c := add_cell !c v lat;
      if Obs.tracing obs then
        Obs.emit obs
          (Event.Custom
             {
               name =
                 Printf.sprintf "fault:%s:%s:%s" workload (Site.name clazz)
                   (verdict_name v);
               value = (match lat with Some l -> l | None -> -1);
             })
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Service-level fault scenarios                                       *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_crash_id (r : Job.request) = starts_with "crash" r.Job.id

let conserved m = m.Svc_metrics.submitted = Svc_metrics.terminal_sum m

let sc_worker_crash source =
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      max_attempts = 1;
      fault =
        Some (fun req ~attempt:_ -> if is_crash_id req then raise (Job.Crash "injected"));
    }
  in
  let jobs =
    List.init 12 (fun i -> Job.make ~id:(Printf.sprintf "ok-%d" i) (Job.Protect { source }))
    @ List.init 3 (fun i ->
          Job.make ~id:(Printf.sprintf "crash-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let victims_failed =
    List.for_all
      (fun (r : Job.response) ->
        (not (starts_with "crash" r.Job.id))
        ||
        match r.Job.status with
        | Job.Failed msg -> starts_with "worker crashed" msg
        | _ -> false)
      rs
  in
  let others_done =
    List.for_all
      (fun (r : Job.response) ->
        starts_with "crash" r.Job.id
        || match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ok =
    conserved m && victims_failed && others_done
    && m.Svc_metrics.worker_crashes = 3
    && m.Svc_metrics.worker_restarts >= 3
  in
  {
    name = "worker_crash";
    ok;
    detail =
      Printf.sprintf
        "crashes=%d restarts=%d victims_failed=%b others_done=%b conserved=%b"
        m.Svc_metrics.worker_crashes m.Svc_metrics.worker_restarts victims_failed
        others_done (conserved m);
  }

let sc_worker_hang source =
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      max_attempts = 1;
      hang_timeout_ms = Some 120;
      fault =
        Some
          (fun req ~attempt:_ ->
            if String.equal req.Job.id "hang-0" then Unix.sleepf 0.5);
    }
  in
  let jobs =
    Job.make ~id:"hang-0" (Job.Protect { source })
    :: List.init 6 (fun i ->
           Job.make ~id:(Printf.sprintf "ok-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let hang_failed =
    List.exists
      (fun (r : Job.response) ->
        String.equal r.Job.id "hang-0"
        &&
        match r.Job.status with
        | Job.Failed msg -> starts_with "worker hung" msg
        | _ -> false)
      rs
  in
  let others_done =
    List.for_all
      (fun (r : Job.response) ->
        String.equal r.Job.id "hang-0"
        || match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ok =
    conserved m && hang_failed && others_done
    && m.Svc_metrics.worker_hangs >= 1
    && m.Svc_metrics.worker_restarts >= 1
  in
  {
    name = "worker_hang";
    ok;
    detail =
      Printf.sprintf "hangs=%d restarts=%d victim_failed=%b others_done=%b conserved=%b"
        m.Svc_metrics.worker_hangs m.Svc_metrics.worker_restarts hang_failed others_done
        (conserved m);
  }

let sc_clock_skew source =
  (* The reported wall clock jumps by half-days on every read; with
     monotonic deadline arithmetic none of the generous deadlines may
     fire. Before the monotonic-clock fix this scenario timed every
     job out (or immortalized it, depending on the jump's sign). *)
  let step = ref 0 in
  let skewed () =
    incr step;
    1.0e9 +. (float_of_int !step *. if !step mod 2 = 0 then 86_400.0 else -43_200.0)
  in
  let cfg =
    {
      Engine.default_config with
      workers = 2;
      default_deadline_ms = Some 60_000;
      wall_clock = Some skewed;
    }
  in
  let jobs =
    List.init 10 (fun i -> Job.make ~id:(Printf.sprintf "skew-%d" i) (Job.Protect { source }))
  in
  let rs, t = Engine.run_batch cfg jobs in
  let m = Engine.metrics t in
  let all_done =
    List.for_all
      (fun (r : Job.response) ->
        match r.Job.status with Job.Done _ -> true | _ -> false)
      rs
  in
  let ts_injected =
    List.for_all (fun (r : Job.response) -> r.Job.ts > 9.0e8) rs
  in
  let ok = all_done && m.Svc_metrics.timed_out = 0 && conserved m && ts_injected in
  {
    name = "deadline_clock_skew";
    ok;
    detail =
      Printf.sprintf "all_done=%b timed_out=%d ts_injected=%b conserved=%b" all_done
        m.Svc_metrics.timed_out ts_injected (conserved m);
  }

let sc_wire_corrupt source =
  let valid i = J.to_string (Job.request_to_json (Job.make ~id:(Printf.sprintf "w-%d" i) (Job.Protect { source }))) in
  let lines =
    [
      "this is not JSON at all";
      "{\"id\":\"trunc\",\"op\":\"prot";  (* torn mid-line *)
      J.to_string
        (J.Obj [ ("id", J.Str "badop"); ("op", J.Str "detonate"); ("source", J.Str source) ]);
      J.to_string (J.Obj [ ("op", J.Str "protect"); ("source", J.Str source) ]);
      (* missing id *)
    ]
    @ List.init 6 valid
  in
  let in_path = Filename.temp_file "sofia_fault" ".ndjson" in
  let out_path = Filename.temp_file "sofia_fault" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove in_path with Sys_error _ -> ());
      try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
      close_out oc;
      let ic = open_in in_path in
      let out = open_out out_path in
      let stats, _t =
        Wire.serve_channels ~config:{ Engine.default_config with workers = 2 } ic out
      in
      close_in ic;
      close_out out;
      let answered = ref 0 in
      let ic = open_in out_path in
      (try
         while true do
           ignore (input_line ic);
           incr answered
         done
       with End_of_file -> ());
      close_in ic;
      let ok =
        stats.Wire.received = 10 && stats.Wire.malformed = 4
        && stats.Wire.completed = 6 && stats.Wire.failed = 0
        && !answered = 10
      in
      {
        name = "wire_corrupt";
        ok;
        detail =
          Printf.sprintf "received=%d malformed=%d completed=%d answered=%d"
            stats.Wire.received stats.Wire.malformed stats.Wire.completed !answered;
      })

let sc_store_tamper source =
  let cfg = { Engine.default_config with workers = 1 } in
  let _rs, t = Engine.run_batch cfg [ Job.make ~id:"s-0" (Job.Protect { source }) ] in
  let store = Engine.store t in
  match Store.entries store with
  | [] -> { name = "store_tamper"; ok = false; detail = "no entry cached" }
  | (e : Store.entry) :: _ ->
    let clean_before = Store.audit store = [] in
    let i = Bytes.length e.Store.bytes / 2 in
    Bytes.set e.Store.bytes i
      (Char.chr (Char.code (Bytes.get e.Store.bytes i) lxor 0x20));
    let caught = match Store.audit store with [ _ ] -> true | _ -> false in
    {
      name = "store_tamper";
      ok = clean_before && caught;
      detail = Printf.sprintf "clean_before=%b corruption_caught=%b" clean_before caught;
    }

(* The persistent tier under fire (PR 6): protect once through an
   engine with a store directory, then tamper the on-disk artifact and
   table between "processes" (fresh engines over the same directory).
   Gate: every tampered read is a *detected* corrupt miss (the corrupt
   counter moves), and every round still completes with the cold run's
   digest — the store self-repairs by re-protecting, and no tampered
   bytes are ever served. *)
let sc_disk_store_tamper source =
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_file "sofia_fault_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let cfg = { Engine.default_config with workers = 1; store_dir = Some dir } in
      let run_protect () =
        let rs, t = Engine.run_batch cfg [ Job.make ~id:"d-0" (Job.Protect { source }) ] in
        let digest =
          match rs with
          | [ { Job.status = Job.Done (Job.Protected { digest; _ }); _ } ] -> Some digest
          | _ -> None
        in
        (digest, Option.get (Engine.disk_store t))
      in
      let d0, _ = run_protect () in
      let entry suffix =
        match
          List.find_opt
            (fun n -> Filename.check_suffix n suffix)
            (Array.to_list (Sys.readdir dir))
        with
        | Some n -> Some (Filename.concat dir n)
        | None -> None
      in
      match (d0, entry ".k1.sfc", entry ".k2.sfc") with
      | None, _, _ | _, None, _ | _, _, None ->
        { name = "disk_store_tamper"; ok = false; detail = "cold protect left no entry" }
      | Some d0, Some artifact_file, Some table_file ->
        let read p =
          let ic = open_in_bin p in
          let b = Bytes.create (in_channel_length ic) in
          really_input ic b 0 (Bytes.length b);
          close_in ic;
          b
        in
        let write p b =
          let oc = open_out_bin p in
          output_bytes oc b;
          close_out oc
        in
        let pristine_a = read artifact_file and pristine_t = read table_file in
        (* a clean warm restart must actually hit the disk *)
        let clean_digest, clean_store = run_protect () in
        let clean_warm =
          clean_digest = Some d0
          && Sofia_store_fs.Store_fs.hits clean_store > 0
          && Sofia_store_fs.Store_fs.corrupt clean_store = 0
        in
        let flip p frac =
          let b = read p in
          let i = min (Bytes.length b - 1) (frac * Bytes.length b / 100) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          write p b
        in
        let rounds =
          [
            (fun () -> flip artifact_file 10);  (* header *)
            (fun () -> flip artifact_file 50);  (* body *)
            (fun () -> flip artifact_file 93);  (* near the tail *)
            (fun () ->
              let b = read artifact_file in
              write artifact_file (Bytes.sub b 0 (Bytes.length b / 2)));  (* torn *)
            (fun () -> flip table_file 50);  (* pre-decoded table *)
          ]
        in
        let detected = ref 0 and stable = ref 0 in
        List.iter
          (fun tamper ->
            write artifact_file pristine_a;
            write table_file pristine_t;
            tamper ();
            let digest, store = run_protect () in
            if Sofia_store_fs.Store_fs.corrupt store > 0 then incr detected;
            if digest = Some d0 then incr stable)
          rounds;
        let n = List.length rounds in
        let ok = clean_warm && !detected = n && !stable = n in
        {
          name = "disk_store_tamper";
          ok;
          detail =
            Printf.sprintf "clean_warm=%b detected=%d/%d digest_stable=%d/%d" clean_warm
              !detected n !stable n;
        })

let sc_breaker source =
  let cfg =
    {
      Engine.default_config with
      workers = 1;
      max_attempts = 1;
      breaker_threshold = 2;
      breaker_cooldown_ms = 5_000;
      fault =
        Some (fun req ~attempt:_ -> if is_crash_id req then raise (Job.Crash "injected"));
    }
  in
  let t = Engine.create cfg in
  Engine.start t;
  List.iter (Engine.submit t)
    (List.init 3 (fun i -> Job.make ~id:(Printf.sprintf "crash-%d" i) (Job.Protect { source })));
  ignore (Engine.drain t);
  let tripped = Engine.breaker_open t in
  Engine.submit t (Job.make ~id:"after" (Job.Protect { source }));
  let rs = Engine.drain t in
  Engine.shutdown t;
  let m = Engine.metrics t in
  let shed =
    List.exists
      (fun (r : Job.response) ->
        String.equal r.Job.id "after"
        &&
        match r.Job.status with
        | Job.Rejected msg -> starts_with "circuit open" msg
        | _ -> false)
      rs
  in
  let ok = tripped && shed && m.Svc_metrics.breaker_trips >= 1 && conserved m in
  {
    name = "circuit_breaker";
    ok;
    detail =
      Printf.sprintf "tripped=%b shed=%b trips=%d conserved=%b" tripped shed
        m.Svc_metrics.breaker_trips (conserved m);
  }

let service_checks workloads =
  match workloads with
  | [] -> []
  | (w0 : W.t) :: _ ->
    let source = w0.W.source in
    [
      sc_worker_crash source;
      sc_worker_hang source;
      sc_clock_skew source;
      sc_wire_corrupt source;
      sc_store_tamper source;
      sc_disk_store_tamper source;
      sc_breaker source;
    ]

(* ------------------------------------------------------------------ *)
(* Driver, summaries, serialisation                                    *)
(* ------------------------------------------------------------------ *)

let run ?(obs = Obs.none) ?(fuel = default_fuel) ?(classes = Site.all)
    ?(with_service = true) ?workloads ?(engine = Sofia_cpu.Run_config.Fast) ~trials ~seed () =
  let workloads =
    match workloads with Some ws -> ws | None -> Sofia_workloads.Registry.all ()
  in
  let config = { (bounded_config fuel) with Sofia_cpu.Run_config.engine } in
  let rng = Prng.create ~seed in
  let cells =
    List.concat_map
      (fun (w : W.t) ->
        let key_seed = Int64.logxor seed (Store.hash_string w.W.name) in
        let p = profile ~config ~key_seed w in
        List.map
          (fun clazz -> run_cell ~config ~rng ~obs ~p ~workload:w.W.name clazz ~trials)
          classes)
      workloads
  in
  let service = if with_service then service_checks workloads else [] in
  { seed; trials_per_cell = trials; fuel; cells; service }

(* one aggregated cell per class, over every workload *)
let by_class r =
  List.filter_map
    (fun clazz ->
      let cs = List.filter (fun c -> c.clazz = clazz) r.cells in
      if cs = [] then None
      else
        Some
          (List.fold_left
             (fun acc c ->
               {
                 acc with
                 trials = acc.trials + c.trials;
                 detected = acc.detected + c.detected;
                 masked = acc.masked + c.masked;
                 corrupted = acc.corrupted + c.corrupted;
                 hung = acc.hung + c.hung;
                 lat_measured = acc.lat_measured + c.lat_measured;
                 lat_total = acc.lat_total + c.lat_total;
                 lat_max = max acc.lat_max c.lat_max;
               })
             (zero_cell clazz "*") cs))
    Site.all

let in_model_escapes r =
  List.fold_left
    (fun acc c ->
      if Site.in_model c.clazz then acc + c.masked + c.corrupted + c.hung else acc)
    0 r.cells

let in_model_trials r =
  List.fold_left
    (fun (d, t) c ->
      if Site.in_model c.clazz then (d + c.detected, t + c.trials) else (d, t))
    (0, 0) r.cells

let service_ok r = List.for_all (fun s -> s.ok) r.service

let passed r = in_model_escapes r = 0 && service_ok r

let lat_mean c =
  if c.lat_measured = 0 then 0.0
  else float_of_int c.lat_total /. float_of_int c.lat_measured

let cell_json c =
  J.Obj
    [
      ("class", J.Str (Site.name c.clazz));
      ("workload", J.Str c.workload);
      ("in_model", J.Bool (Site.in_model c.clazz));
      ("trials", J.Int c.trials);
      ("detected", J.Int c.detected);
      ("masked", J.Int c.masked);
      ("corrupted", J.Int c.corrupted);
      ("hung", J.Int c.hung);
      ( "latency_insns",
        J.Obj
          [
            ("measured", J.Int c.lat_measured);
            ("mean", J.Float (lat_mean c));
            ("max", J.Int c.lat_max);
          ] );
    ]

let to_json r =
  let d, t = in_model_trials r in
  J.Obj
    [
      ("schema", J.Str "sofia-fault-campaign/1");
      ("seed", J.Str (Printf.sprintf "0x%Lx" r.seed));
      ("trials_per_cell", J.Int r.trials_per_cell);
      ("fuel", J.Int r.fuel);
      ( "classes",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.Str (Site.name c));
                   ("in_model", J.Bool (Site.in_model c));
                   ("description", J.Str (Site.describe c));
                 ])
             Site.all) );
      ("matrix", J.List (List.map cell_json r.cells));
      ("by_class", J.List (List.map cell_json (by_class r)));
      ( "summary",
        J.Obj
          [
            ("in_model_trials", J.Int t);
            ("in_model_detected", J.Int d);
            ( "in_model_detection_rate",
              J.Float (if t = 0 then 1.0 else float_of_int d /. float_of_int t) );
            ("in_model_escapes", J.Int (in_model_escapes r));
            ("service_ok", J.Bool (service_ok r));
            ("passed", J.Bool (passed r));
          ] );
      ( "service",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [ ("name", J.Str s.name); ("ok", J.Bool s.ok);
                   ("detail", J.Str s.detail) ])
             r.service) );
    ]

let pp fmt r =
  let d, t = in_model_trials r in
  Format.fprintf fmt "fault campaign  seed=0x%Lx  trials/cell=%d@." r.seed
    r.trials_per_cell;
  Format.fprintf fmt "%-16s %8s %9s %7s %10s %6s %12s %8s@." "class" "trials"
    "detected" "masked" "corrupted" "hung" "latency-mean" "lat-max";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-16s %8d %9d %7d %10d %6d %12.2f %8d%s@."
        (Site.name c.clazz) c.trials c.detected c.masked c.corrupted c.hung
        (lat_mean c) c.lat_max
        (if Site.in_model c.clazz then "" else "  [out of model]"))
    (by_class r);
  Format.fprintf fmt "in-model: %d/%d detected, %d escape(s)@." d t (in_model_escapes r);
  List.iter
    (fun s ->
      Format.fprintf fmt "service %-20s %s  %s@." s.name
        (if s.ok then "OK " else "FAIL")
        s.detail)
    r.service
