(** Typed fault sites: the taxonomy of the injection campaign.

    A {e class} names a tamper mechanism; a {e site} is one concrete,
    seed-reproducible instance of it (an address and mask, an illegal
    edge, a fetch index). The campaign samples sites only from state
    the clean run actually consumed — a visited block, a taken fetch —
    so every trial exercises the detection path and an escape is a
    real escape, never a fault that landed in dead code.

    Classes and the SOFIA detection model:

    - [Insn_flip], [Mac_flip]: persistent single-bit flips in a visited
      block's instruction / stored-MAC words — the paper's tampered-code
      case. Multiplexor blocks restrict MAC flips to the shared M2 word
      and instruction flips to the shared slots, because a flip in the
      M1 copy of a path never taken is dead-word corruption (see below).
    - [Keystream]: a random 32-bit XOR mask on a consumed word — the
      observable effect of a corrupted CTR keystream, since plaintext =
      ciphertext ⊕ keystream.
    - [Edge_redirect]: a control transfer along an edge outside the
      static CFG — the paper's fine-grained CFI case, answered by the
      frontend without running the machine.
    - [Mux_swap]: swapping a multiplexor block's two independently
      encrypted M1 copies — each copy is bound to its edge's keystream,
      so either entry decrypts garbage.
    - [Fetch_transient]: a transient flip on one fetch of the 256-bit
      group — {e out of model} ({!in_model} is [false]): the paper's
      conclusion defers fetch-path glitches, and a flip landing in the
      unused M1 copy of a multiplexor block is invisible to the taken
      path's MAC check. The campaign reports its (high) detection rate
      but CI does not gate on it. *)

type clazz =
  | Insn_flip
  | Mac_flip
  | Keystream
  | Edge_redirect
  | Mux_swap
  | Fetch_transient

val all : clazz list

val in_model : clazz -> bool
(** [true] for the classes SOFIA guarantees to detect; the CI coverage
    gate requires a 100% detection rate exactly on these. *)

val applicable : clazz -> Sofia_transform.Backend_id.t -> bool
(** Whether the class has any fault site under the backend. [Mux_swap]
    is SOFIA-only: SCFP builds no multiplexor blocks (joins re-key the
    sponge instead), so the class is structurally inapplicable there —
    campaign cells record it as not-applicable, never as an escape. *)

val name : clazz -> string
(** Stable snake_case tag for JSON/CLI. *)

val of_name : string -> clazz option
val describe : clazz -> string

type site =
  | Word_xor of { address : int; mask : int }
      (** XOR [mask] into the encrypted text word at [address] *)
  | Word_swap of { a : int; b : int }  (** exchange two encrypted words *)
  | Redirect of { from_exit : int; target : int }
      (** ask the frontend to accept the edge [from_exit → target] *)
  | Transient of { fetch : int; bit : int }
      (** flip [bit] of the [fetch]-th (1-based) fetched block group *)

val pp_site : Format.formatter -> site -> unit

val apply : Sofia_transform.Image.t -> site -> Sofia_transform.Image.t
(** Materialise an image-tamper site ([Word_xor]/[Word_swap]) as a
    tampered copy; [Redirect]/[Transient] return the image unchanged
    (they are injected through the frontend query and the runner's
    fault hook respectively).
    @raise Invalid_argument if an address is outside the text. *)
