(* Identifier for a protection backend — the scheme that lays out,
   encrypts and integrity-checks an image. Lives at the bottom of the
   transform layer so every tier (transform, cpu, service, fleet,
   fault, bench, CLI) can dispatch on it without depending on
   lib/protection's registry. *)

type t = Sofia | Scfp

let all = [ Sofia; Scfp ]
let name = function Sofia -> "sofia" | Scfp -> "scfp"

let of_name = function
  | "sofia" -> Some Sofia
  | "scfp" -> Some Scfp
  | _ -> None

let of_name_exn s =
  match of_name s with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Backend_id.of_name_exn: unknown backend %S" s)

(* wire/envelope tag; 0 is reserved so absent-field defaults are
   distinguishable in binary codecs *)
let tag = function Sofia -> 1 | Scfp -> 2
let of_tag = function 1 -> Some Sofia | 2 -> Some Scfp | _ -> None
let equal (a : t) b = a = b
let pp ppf b = Format.pp_print_string ppf (name b)
