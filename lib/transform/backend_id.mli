(** Identifier for a protection backend (see lib/protection for the
    registry of implementations). *)

type t = Sofia | Scfp

val all : t list
val name : t -> string
val of_name : string -> t option
val of_name_exn : string -> t
val tag : t -> int
val of_tag : int -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
