(** Plaintext layout of a program into SOFIA blocks.

    This is the structural half of the paper-§III transformation: it
    re-arranges the instruction stream into execution and multiplexor
    blocks, inserts the synthetic blocks the block discipline needs,
    assigns addresses and patches every control transfer. Encryption
    and MAC computation happen afterwards (see {!Transform}).

    Synthetic blocks:

    - {b trampolines} — multiplexor-tree nodes giving a join point more
      than two predecessors (paper §II-D, Fig. 9);
    - {b bridges} — a fall-through edge can only enter an execution
      block at offset 0, so a fall-through into a multiplexor-headed
      block is converted into an explicit jump block placed adjacently;
    - {b return shims} — a return lands at the call site + 4, which is
      the next block's offset 0 (an execution-block entry); when that
      return point is also a branch target (a join), the return edge is
      routed through an adjacent single-entry shim that jumps to the
      join's multiplexor port;
    - {b return funnels} — a function whose returns could reach one
      return point over several edges (multiple [ret]s, or membership
      in a multi-target indirect-call set) has its [ret]s replaced by
      jumps into one shared funnel block holding the single canonical
      [ret], so every return point keeps exactly one predecessor. This
      mildly coarsens the return CFG exactly as the paper's
      single-return-instruction presentation assumes. *)

type role = Primary | Bridge | Shim | Trampoline | Funnel

type block = {
  base : int;  (** byte address in the transformed text *)
  kind : Block.kind;
  role : role;
  insns : Sofia_isa.Insn.t array;  (** patched instructions (6 or 5) *)
  entry_prev_pcs : int list;
      (** per entry port, the address of the predecessor's exit word
          (paper: prevPC); 1 element for exec, 2 for mux *)
  orig_indices : int option array;
      (** per slot, the original instruction index it carries *)
}

type stats = {
  original_insns : int;
  original_text_bytes : int;
  transformed_text_bytes : int;
  exec_blocks : int;
  mux_blocks : int;
  bridge_blocks : int;
  shim_blocks : int;
  trampoline_blocks : int;
  funnel_blocks : int;
  pad_slots : int;
  unreachable_dropped : int;
}

type t = {
  blocks : block array;
  entry : int;  (** transformed entry address (the reset edge's port) *)
  text_base : int;
  data : Bytes.t;  (** data image with code pointers re-patched *)
  data_base : int;
  addr_of_orig : int array;
      (** original instruction index → transformed slot address (-1 if
          dropped as unreachable or replaced by a funnel jump) *)
  stats : stats;
}

type error =
  | Cfg_errors of Sofia_cfg.Cfg.error list
  | Branch_out_of_range of { from_addr : int; to_addr : int }
  | Code_pointer_unresolved of string
      (** [la]/[.word] of a text symbol that is not the target of any
          indirect jump *)
  | Code_pointer_ambiguous of string
      (** text symbol targeted by more than one indirect site: the
          pointer value cannot select a unique entry port *)
  | Indirect_fanin_unsupported of { sites : int }
      (** SCFP profile: a block would receive more than one
          jalr-flavoured (return/indirect) edge, so the
          destination-indexed link patch has no unique source *)
  | Empty_program

val pp_error : Format.formatter -> error -> unit

val layout : ?backend:Backend_id.t -> Sofia_asm.Program.t -> (t, error) result
(** [backend] (default [Sofia]) selects the layout profile. The SCFP
    profile produces only execution blocks — a single entry port at
    offset 0, arbitrary fan-in, no multiplexor heads, bridges or
    trampolines — while keeping return funnels and shims, which give
    every return point the unique jalr predecessor the sponge link
    patch requires (see {!Scfp}). *)

val layout_exn : ?backend:Backend_id.t -> Sofia_asm.Program.t -> t
(** @raise Invalid_argument with the rendered error. *)

val block_at : t -> int -> block option
(** Block whose 32-byte span contains the given address. *)

val pp_block : Format.formatter -> block -> unit
