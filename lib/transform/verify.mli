(** Independent verifier for protected images — the assurance tool a
    SOFIA software provider would run before signing off a release
    binary.

    [check] re-derives everything the architecture relies on, without
    trusting the transformation pipeline that produced the image:

    - structure: 32-byte alignment, slot counts, control flow only in
      the last slot, no store in a banned slot, entry-port counts;
    - cryptography: each block's stored MAC words equal the CBC-MAC of
      its plaintext instructions under the right key, and every
      ciphertext word decrypts to its plaintext word under the keystream
      of its declared control-flow edge (including the multiplexor
      M2-uses-addr(M1e2) rule);
    - linkage: every declared predecessor is the reset vector or the
      exit word of some block in the image;
    - coverage (with the source program): every reachable original
      instruction occupies exactly one slot, unchanged except for
      control-transfer retargeting and code-pointer rematerialisation.

    An empty issue list means the image would run exactly the source
    program and every violation the paper lists is detectable. *)

type issue =
  | Misaligned_block of { base : int }
  | Wrong_slot_count of { base : int; expected : int; got : int }
  | Mid_block_control_flow of { address : int }
  | Banned_store of { address : int }
  | Wrong_entry_count of { base : int; got : int }
  | Mac_words_wrong of { base : int }
  | Ciphertext_mismatch of { address : int }
  | Unknown_predecessor of { base : int; prev_pc : int }
  | Patch_mismatch of { base : int; slot : int }
  | Uncovered_instruction of { orig_index : int }
  | Duplicated_instruction of { orig_index : int }
  | Instruction_changed of { orig_index : int; address : int }

val pp_issue : Format.formatter -> issue -> unit

val check :
  ?obs:Sofia_obs.Obs.t -> ?domains:int -> keys:Sofia_crypto.Keys.t -> Image.t -> issue list
(** Structure + cryptography + linkage. [obs] counts blocks checked,
    re-derived MAC verifications and issues found, and emits a
    [Mac_verify] event per block — so a release-signing pipeline can
    expose the verifier's work the same way the simulator exposes the
    frontend's.

    [domains] (default 1) fans the per-block re-derivation out over
    that many OCaml domains. Each block's check is pure; all obs
    accounting and event emission happens on the caller's domain in
    block order after the join, so the issue list, counters and event
    stream are identical whatever [domains] is. *)

val check_against_source :
  ?obs:Sofia_obs.Obs.t ->
  ?domains:int ->
  keys:Sofia_crypto.Keys.t -> Sofia_asm.Program.t -> Image.t -> issue list
(** Everything in {!check} plus source coverage. *)

val semantic_shape : Sofia_isa.Insn.t -> Sofia_isa.Insn.t
(** Blank exactly the instruction fields a legitimate transformation
    may rewrite (branch/jal retarget offsets, [lui]/[or]-self
    code-pointer rematerialisation immediates), keeping everything that
    must stay identical. Two instructions are "the same work" iff their
    shapes are equal — the normalisation the differential tests use to
    compare retired-instruction streams across the two cores. *)
