module Insn = Sofia_isa.Insn
module Encoding = Sofia_isa.Encoding
module Keys = Sofia_crypto.Keys
module Ctr = Sofia_crypto.Ctr
module Cbc_mac = Sofia_crypto.Cbc_mac
module Program = Sofia_asm.Program
module Cfg = Sofia_cfg.Cfg

type issue =
  | Misaligned_block of { base : int }
  | Wrong_slot_count of { base : int; expected : int; got : int }
  | Mid_block_control_flow of { address : int }
  | Banned_store of { address : int }
  | Wrong_entry_count of { base : int; got : int }
  | Mac_words_wrong of { base : int }
  | Ciphertext_mismatch of { address : int }
  | Unknown_predecessor of { base : int; prev_pc : int }
  | Patch_mismatch of { base : int; slot : int }
  | Uncovered_instruction of { orig_index : int }
  | Duplicated_instruction of { orig_index : int }
  | Instruction_changed of { orig_index : int; address : int }

let pp_issue fmt = function
  | Misaligned_block { base } -> Format.fprintf fmt "block at 0x%08x is not 32-byte aligned" base
  | Wrong_slot_count { base; expected; got } ->
    Format.fprintf fmt "block at 0x%08x has %d instruction slots, expected %d" base got expected
  | Mid_block_control_flow { address } ->
    Format.fprintf fmt "control-flow instruction in a non-final slot at 0x%08x" address
  | Banned_store { address } ->
    Format.fprintf fmt "store in a banned execution-block slot at 0x%08x" address
  | Wrong_entry_count { base; got } ->
    Format.fprintf fmt "block at 0x%08x declares %d entry ports" base got
  | Mac_words_wrong { base } ->
    Format.fprintf fmt "stored MAC of block at 0x%08x does not match its instructions" base
  | Ciphertext_mismatch { address } ->
    Format.fprintf fmt "ciphertext word at 0x%08x does not decrypt to its plaintext" address
  | Unknown_predecessor { base; prev_pc } ->
    Format.fprintf fmt "block at 0x%08x declares unknown predecessor 0x%08x" base prev_pc
  | Patch_mismatch { base; slot } ->
    Format.fprintf fmt "sponge patch slot %d of block at 0x%08x does not re-derive" slot base
  | Uncovered_instruction { orig_index } ->
    Format.fprintf fmt "reachable source instruction #%d is not in the image" orig_index
  | Duplicated_instruction { orig_index } ->
    Format.fprintf fmt "source instruction #%d occupies more than one slot" orig_index
  | Instruction_changed { orig_index; address } ->
    Format.fprintf fmt "source instruction #%d was altered at 0x%08x" orig_index address

module Obs = Sofia_obs.Obs
module Event = Sofia_obs.Event
module Metrics = Sofia_obs.Metrics

(* Pure per-block check: no obs, no shared mutable state — safe to fan
   out over domains. Returns the block's issues (in discovery order)
   and whether its stored MAC words matched. *)
let check_block ~(keys : Keys.t) ~(image : Image.t) ~exits (b : Image.block) =
  let issues = ref [] in
  let issue i = issues := i :: !issues in
  let base = b.Image.base in
  if (base - image.Image.text_base) mod Block.size_bytes <> 0 then issue (Misaligned_block { base });
  let expected_slots = Block.insn_slots b.Image.kind in
  let got = Array.length b.Image.insns in
  if got <> expected_slots then issue (Wrong_slot_count { base; expected = expected_slots; got });
  let first = Block.first_insn_offset b.Image.kind in
  Array.iteri
    (fun i insn ->
      let address = base + first + (4 * i) in
      if i < got - 1 && Insn.is_control_flow insn then issue (Mid_block_control_flow { address });
      if Block.store_banned_slot b.Image.kind i && Insn.is_store insn then
        issue (Banned_store { address }))
    b.Image.insns;
  (* entry ports *)
  let nports = List.length (Block.port_offsets b.Image.kind) in
  let nentries = List.length b.Image.entry_prev_pcs in
  if nentries <> nports then issue (Wrong_entry_count { base; got = nentries });
  List.iter
    (fun prev ->
      if prev <> Block.reset_prev_pc && not (Hashtbl.mem exits prev) then
        issue (Unknown_predecessor { base; prev_pc = prev }))
    b.Image.entry_prev_pcs;
  (* MAC words in the plaintext block *)
  let insn_words = Array.map Encoding.encode b.Image.insns in
  let mac_key = match b.Image.kind with Block.Exec -> keys.Keys.k2 | Block.Mux -> keys.Keys.k3 in
  let m1, m2 = Cbc_mac.split_tag (Cbc_mac.mac_words mac_key insn_words) in
  let macs_ok =
    match b.Image.kind with
    | Block.Exec ->
      b.Image.plain_words.(0) = m1 && b.Image.plain_words.(1) = m2
      && Array.for_all2 ( = ) insn_words (Array.sub b.Image.plain_words 2 6)
    | Block.Mux ->
      b.Image.plain_words.(0) = m1 && b.Image.plain_words.(1) = m1
      && b.Image.plain_words.(2) = m2
      && Array.for_all2 ( = ) insn_words (Array.sub b.Image.plain_words 3 5)
  in
  if not macs_ok then issue (Mac_words_wrong { base });
  (* ciphertext: re-derive each word's keystream from the declared
     entry edges and the in-block chain *)
  let prev_of_word i =
    match (b.Image.kind, i) with
    | Block.Exec, 0 -> [ List.nth b.Image.entry_prev_pcs 0 ]
    | Block.Mux, 0 -> [ List.nth b.Image.entry_prev_pcs 0 ]
    | Block.Mux, 1 -> [ List.nth b.Image.entry_prev_pcs 1 ]
    | _, i -> [ base + (4 * (i - 1)) ]
  in
  Array.iteri
    (fun i cipher ->
      let pc = base + (4 * i) in
      let ok =
        List.exists
          (fun prev ->
            Ctr.crypt_word keys.Keys.k1 ~nonce:image.Image.nonce ~prev_pc:prev ~pc cipher
            = b.Image.plain_words.(i))
          (prev_of_word i)
      in
      if not ok then issue (Ciphertext_mismatch { address = pc }))
    b.Image.cipher_words;
  (List.rev !issues, macs_ok)

(* SCFP counterpart of [check_block]: re-derive the duplex walk from
   the block's canonical entry state over the *stored* ciphertext, and
   re-derive every patch slot from first principles — an image whose
   patch table was doctored fails here even though the text itself
   still absorbs cleanly. [s_exits] holds every block's exit state
   (derived from stored bytes in a prior pass) because the link patch
   of block t is a function of its jalr-predecessor's exit state. *)
let scfp_check_block ~(image : Image.t) ~exits ~s0 ~s_exits i (b : Image.block) =
  let issues = ref [] in
  let issue x = issues := x :: !issues in
  let base = b.Image.base in
  if (base - image.Image.text_base) mod Block.size_bytes <> 0 then issue (Misaligned_block { base });
  let got = Array.length b.Image.insns in
  if got <> Scfp.insn_words then
    issue (Wrong_slot_count { base; expected = Scfp.insn_words; got });
  Array.iteri
    (fun s insn ->
      let address = base + (4 * Scfp.tag_word_count) + (4 * s) in
      if s < got - 1 && Insn.is_control_flow insn then issue (Mid_block_control_flow { address });
      if Block.store_banned_slot Block.Exec s && Insn.is_store insn then
        issue (Banned_store { address }))
    b.Image.insns;
  (* entry ports: arbitrary fan-in, but a block nothing reaches is a
     layout bug *)
  let nentries = List.length b.Image.entry_prev_pcs in
  if nentries = 0 then issue (Wrong_entry_count { base; got = nentries });
  List.iter
    (fun prev ->
      if prev <> Block.reset_prev_pc && not (Hashtbl.mem exits prev) then
        issue (Unknown_predecessor { base; prev_pc = prev }))
    b.Image.entry_prev_pcs;
  (* tag + ciphertext: one duplex walk from the canonical entry state *)
  let plain6, (t0, t1), _ = Scfp.chain (Scfp.canonical ~s0 ~base) b.Image.cipher_words 0 in
  let macs_ok = b.Image.cipher_words.(0) = t0 && b.Image.cipher_words.(1) = t1 in
  if not macs_ok then issue (Mac_words_wrong { base });
  Array.iteri
    (fun s insn ->
      if plain6.(s) <> Encoding.encode insn then
        issue (Ciphertext_mismatch { address = base + (4 * Scfp.tag_word_count) + (4 * s) }))
    b.Image.insns;
  (* patch table: every slot must re-derive *)
  let nblocks = Array.length image.Image.blocks in
  let tb = image.Image.text_base in
  let text_end = tb + (Block.size_bytes * nblocks) in
  let block_aligned a = a >= tb && a < text_end && (a - tb) mod Block.size_bytes = 0 in
  let canon_of tgt = Scfp.canonical ~s0 ~base:tgt in
  let expect slot v =
    if Scfp.patch_get image.Image.patches i slot <> v then issue (Patch_mismatch { base; slot })
  in
  let fill slot = expect slot (Scfp.filler ~s0 ~base ~slot) in
  if i + 1 < nblocks then
    expect Scfp.slot_fall (Int64.logxor s_exits.(i) (canon_of (base + Block.size_bytes)))
  else fill Scfp.slot_fall;
  let exit_pc = base + Block.exit_offset in
  (match b.Image.insns.(got - 1) with
  | Insn.Branch (_, _, _, woff) | Insn.Jal (_, woff)
    when block_aligned (exit_pc + (4 * woff)) ->
    expect Scfp.slot_direct (Int64.logxor s_exits.(i) (canon_of (exit_pc + (4 * woff))))
  | _ -> fill Scfp.slot_direct);
  let jalr_preds =
    List.sort_uniq compare
      (List.filter_map
         (fun p ->
           let rel = p - tb in
           if rel >= 0 && rel < text_end - tb && rel mod Block.size_bytes = Block.exit_offset then
             let u = rel / Block.size_bytes in
             match image.Image.blocks.(u).Image.insns with
             | [||] -> None
             | insns -> (
               match insns.(Array.length insns - 1) with Insn.Jalr _ -> Some u | _ -> None)
           else None)
         b.Image.entry_prev_pcs)
  in
  (match jalr_preds with
  | [ u ] ->
    expect Scfp.slot_link
      (Int64.logxor (Scfp.link_arrive ~s_exit:s_exits.(u) ~target:base) (canon_of base))
  | [] | _ :: _ :: _ -> fill Scfp.slot_link);
  fill 3;
  (List.rev !issues, macs_ok)

let check ?(obs = Obs.none) ?domains ~(keys : Keys.t) (image : Image.t) =
  (* valid exit addresses of the image, for linkage checking; built
     before the fan-out and only read afterwards *)
  let exits = Hashtbl.create 64 in
  Array.iter
    (fun (b : Image.block) -> Hashtbl.replace exits (b.Image.base + Block.exit_offset) ())
    image.Image.blocks;
  let results =
    match image.Image.backend with
    | Backend_id.Sofia ->
      Sofia_util.Par.map ?domains (check_block ~keys ~image ~exits) image.Image.blocks
    | Backend_id.Scfp ->
      let s0 = Scfp.init ~keys ~nonce:image.Image.nonce in
      let s_exits =
        Array.map
          (fun (b : Image.block) ->
            let _, _, s_exit =
              Scfp.chain (Scfp.canonical ~s0 ~base:b.Image.base) b.Image.cipher_words 0
            in
            s_exit)
          image.Image.blocks
      in
      Sofia_util.Par.map ?domains
        (fun i -> scfp_check_block ~image ~exits ~s0 ~s_exits i image.Image.blocks.(i))
        (Array.init (Array.length image.Image.blocks) Fun.id)
  in
  (* obs accounting runs on the caller's domain, in block order, off the
     per-block results — identical counters and event stream whether the
     checks themselves ran on 1 domain or 8 *)
  Array.iteri
    (fun i (issues, macs_ok) ->
      let b = image.Image.blocks.(i) in
      (match obs.Obs.metrics with
       | Some m ->
         m.Metrics.verify_checks <- m.Metrics.verify_checks + 1;
         m.Metrics.mac_verifies <- m.Metrics.mac_verifies + 1;
         if not macs_ok then m.Metrics.mac_failures <- m.Metrics.mac_failures + 1;
         m.Metrics.verify_issues <- m.Metrics.verify_issues + List.length issues
       | None -> ());
      if Obs.tracing obs then
        Obs.emit obs
          (Event.Mac_verify
             { block_base = b.Image.base;
               kind =
                 (match b.Image.kind with Block.Exec -> Event.Exec_mac | Block.Mux -> Event.Mux_mac);
               ok = macs_ok }))
    results;
  List.concat_map fst (Array.to_list results)

(* Strip the fields a legitimate retarget/rematerialisation may change,
   keeping everything that must stay identical. *)
let semantic_shape (insn : Insn.t) =
  match insn with
  | Insn.Branch (c, r1, r2, _) -> Insn.Branch (c, r1, r2, 0)
  | Insn.Jal (rd, _) -> Insn.Jal (rd, 0)
  | Insn.Lui (rd, _) -> Insn.Lui (rd, 0)
  | Insn.Alu_i (Or, rd, rs, _) when Sofia_isa.Reg.equal rd rs -> Insn.Alu_i (Or, rd, rs, 0)
  | Insn.Alu_r _ | Insn.Alu_i _ | Insn.Load _ | Insn.Store _ | Insn.Jalr _ | Insn.Halt _ -> insn

let check_against_source ?(obs = Obs.none) ?domains ~keys (program : Program.t) (image : Image.t) =
  let issues = ref (check ~obs ?domains ~keys image) in
  let issue i =
    (match obs.Obs.metrics with
     | Some m -> m.Metrics.verify_issues <- m.Metrics.verify_issues + 1
     | None -> ());
    issues := !issues @ [ i ]
  in
  (match Cfg.build program with
   | Error _ -> () (* the transformation would have refused this program *)
   | Ok cfg ->
     let reachable = Cfg.reachable cfg in
     let n = Array.length program.Program.text in
     (* which original instruction sits in which slot *)
     let seen = Array.make n 0 in
     let la_lo_indices =
       List.concat_map
         (fun { Program.hi_index; lo_index; _ } -> [ hi_index; lo_index ])
         program.Program.la_relocs
     in
     Array.iter
       (fun (b : Image.block) ->
         let first = Block.first_insn_offset b.Image.kind in
         Array.iteri
           (fun s orig ->
             match orig with
             | None -> ()
             | Some i ->
               seen.(i) <- seen.(i) + 1;
               let address = b.Image.base + first + (4 * s) in
               let original = program.Program.text.(i) in
               let placed = b.Image.insns.(s) in
               (* [semantic_shape] already blanks exactly the fields a
                  retarget (branch/jal offsets) or a code-pointer
                  rematerialisation (lui / or-self immediates, cf.
                  [la_lo_indices]) may rewrite *)
               ignore la_lo_indices;
               if semantic_shape placed <> semantic_shape original then
                 issue (Instruction_changed { orig_index = i; address }))
           b.Image.orig_indices)
       image.Image.blocks;
     for i = 0 to n - 1 do
       if reachable.(i) then begin
         (* funnelled rets are legitimately replaced by jumps *)
         let is_ret =
           match program.Program.text.(i) with
           | Insn.Jalr (rd, rs, 0) ->
             Sofia_isa.Reg.equal rd Sofia_isa.Reg.zero && Sofia_isa.Reg.equal rs Sofia_isa.Reg.ra
           | _ -> false
         in
         if seen.(i) = 0 && not is_ret then issue (Uncovered_instruction { orig_index = i });
         if seen.(i) > 1 then issue (Duplicated_instruction { orig_index = i })
       end
     done);
  !issues
