module Insn = Sofia_isa.Insn
module Reg = Sofia_isa.Reg
module Program = Sofia_asm.Program
module Cfg = Sofia_cfg.Cfg

type role = Primary | Bridge | Shim | Trampoline | Funnel

type block = {
  base : int;
  kind : Block.kind;
  role : role;
  insns : Insn.t array;
  entry_prev_pcs : int list;
  orig_indices : int option array;
}

type stats = {
  original_insns : int;
  original_text_bytes : int;
  transformed_text_bytes : int;
  exec_blocks : int;
  mux_blocks : int;
  bridge_blocks : int;
  shim_blocks : int;
  trampoline_blocks : int;
  funnel_blocks : int;
  pad_slots : int;
  unreachable_dropped : int;
}

type t = {
  blocks : block array;
  entry : int;
  text_base : int;
  data : Bytes.t;
  data_base : int;
  addr_of_orig : int array;
  stats : stats;
}

type error =
  | Cfg_errors of Cfg.error list
  | Branch_out_of_range of { from_addr : int; to_addr : int }
  | Code_pointer_unresolved of string
  | Code_pointer_ambiguous of string
  | Indirect_fanin_unsupported of { sites : int }
  | Empty_program

let pp_error fmt = function
  | Cfg_errors es ->
    Format.fprintf fmt "CFG construction failed:";
    List.iter (fun e -> Format.fprintf fmt "@ %a" Cfg.pp_error e) es
  | Branch_out_of_range { from_addr; to_addr } ->
    Format.fprintf fmt "branch at 0x%08x cannot reach 0x%08x (offset field too small)" from_addr
      to_addr
  | Code_pointer_unresolved s ->
    Format.fprintf fmt
      "code pointer to %S: symbol is not the target of any declared indirect jump" s
  | Code_pointer_ambiguous s ->
    Format.fprintf fmt
      "code pointer to %S: several indirect sites target it, so one pointer value cannot name a \
       unique entry port" s
  | Indirect_fanin_unsupported { sites } ->
    Format.fprintf fmt
      "SCFP layout: %d jalr-flavoured edges converge on one block; the destination link patch \
       needs a unique indirect predecessor" sites
  | Empty_program -> Format.fprintf fmt "program has no instructions"

exception Fail of error

(* ------------------------------------------------------------------ *)
(* Chunks: maximal single-entry straight-line runs.                    *)
(* ------------------------------------------------------------------ *)

type terminator =
  | T_fall
  | T_branch of { taken : int }  (* chunk id; also falls through *)
  | T_jump of int
  | T_call of { targets : int list; indirect : bool }
  | T_ret of { rps : int list }
  | T_funnel of int  (* funnel class id *)
  | T_indirect of { targets : int list }
  | T_halt

type chunk = {
  c_id : int;
  head : int;  (* original instruction index *)
  body : int list;  (* non-terminator instructions, in order *)
  term_insn : int option;  (* original index of the control-flow terminator *)
  mutable term : terminator;  (* chunk ids resolved after chunking *)
}

(* ------------------------------------------------------------------ *)
(* Layout nodes (pre-address blocks) and edges.                        *)
(* ------------------------------------------------------------------ *)

type slot = S_orig of int | S_pad | S_jump_out | S_synth of Insn.t

type flavor = F_fall | F_taken | F_jump | F_call | F_ret | F_indirect | F_reset

type edge = { e_src : src; mutable e_dst : int; flavor : flavor }
and src = Reset | From of int

type node = {
  n_id : int;
  mutable n_kind : Block.kind;
  n_role : role;
  n_slots : slot array;
  mutable n_in : edge list;
  mutable n_out : edge list;
}

(* ------------------------------------------------------------------ *)
(* Union-find for return-funnel classes.                               *)
(* ------------------------------------------------------------------ *)

let uf_find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let r = go i in
  let rec compress i = if parent.(i) <> r then (let p = parent.(i) in parent.(i) <- r; compress p) in
  compress i;
  r

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

(* ------------------------------------------------------------------ *)

(* [backend] selects the layout profile. SOFIA (the default) answers
   convergent control flow with multiplexor blocks: mux heads, bridges
   for branch-falls into them, and trampoline trees reducing fan-in to
   2. SCFP needs none of that — every block is Exec with its single
   port at offset 0 and arbitrary fan-in, because the sponge patch
   table (see scfp.ml) reconciles predecessors instead of the block
   geometry. Funnels and return shims are kept under SCFP: they are
   what make the jalr-predecessor of every return point unique, which
   the destination-indexed link patch requires. *)
let layout ?(backend = Backend_id.Sofia) (program : Program.t) =
  try
    let scfp = backend = Backend_id.Scfp in
    let n = Array.length program.Program.text in
    if n = 0 then raise (Fail Empty_program);
    let cfg = match Cfg.build program with Ok c -> c | Error es -> raise (Fail (Cfg_errors es)) in
    let reachable = Cfg.reachable cfg in
    let is_cf i = Insn.is_control_flow program.Program.text.(i) in
    let entry_idx =
      match Program.index_of_address program program.Program.entry with
      | Some e -> e
      | None -> 0
    in

    (* ---- funnel classes over ret instructions ---- *)
    let ret_indices =
      List.filter (fun i -> match Cfg.kind cfg i with Cfg.Ret _ -> true | _ -> false)
        (List.init n (fun i -> i))
      |> List.filter (fun i -> reachable.(i))
    in
    let rets_of_function f =
      List.filter (fun r -> List.mem f (Cfg.owners cfg r)) ret_indices
    in
    let parent = Array.init n (fun i -> i) in
    (* all rets of one function belong together *)
    List.iter
      (fun f ->
        match rets_of_function f with
        | [] -> ()
        | first :: rest -> List.iter (fun r -> uf_union parent first r) rest)
      (Cfg.entries cfg);
    (* rets of functions sharing a multi-target indirect call site too *)
    for i = 0 to n - 1 do
      if reachable.(i) then
        match Cfg.kind cfg i with
        | Cfg.Call { targets; _ } when Insn.is_indirect program.Program.text.(i) ->
          let all_rets = List.concat_map rets_of_function targets in
          (match all_rets with
           | [] -> ()
           | first :: rest -> List.iter (fun r -> uf_union parent first r) rest)
        | Cfg.Call _ | Cfg.Straight | Cfg.Cond_branch _ | Cfg.Jump _ | Cfg.Ret _
        | Cfg.Indirect_jump _ | Cfg.Stop -> ()
    done;
    let class_members = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let c = uf_find parent r in
        Hashtbl.replace class_members c (r :: (try Hashtbl.find class_members c with Not_found -> [])))
      ret_indices;
    (* a class needs a funnel iff it contains ≥2 ret instructions *)
    let funnel_of_ret = Hashtbl.create 8 in
    let funnel_classes = ref [] in
    Hashtbl.iter
      (fun c members ->
        if List.length members >= 2 then begin
          funnel_classes := (c, List.sort compare members) :: !funnel_classes;
          List.iter (fun r -> Hashtbl.replace funnel_of_ret r c) members
        end)
      class_members;
    let funnel_classes = List.sort compare !funnel_classes in

    (* ---- leaders and chunks ---- *)
    let leader = Array.make n false in
    leader.(entry_idx) <- true;
    for i = 0 to n - 1 do
      if reachable.(i) then begin
        let preds = Cfg.predecessors cfg i in
        if List.length preds > 1 then leader.(i) <- true;
        (match preds with [ p ] when p = i - 1 -> () | [] | _ :: _ -> leader.(i) <- true);
        if i > 0 && is_cf (i - 1) then leader.(i) <- true
      end
    done;

    let chunks = ref [] in
    let chunk_of = Array.make n (-1) in
    let next_chunk_id = ref 0 in
    let i = ref 0 in
    while !i < n do
      if reachable.(!i) && leader.(!i) then begin
        let head = !i in
        let insns = ref [ head ] in
        let j = ref (head + 1) in
        if not (is_cf head) then begin
          let continue = ref true in
          while !continue && !j < n && reachable.(!j) && not leader.(!j) do
            insns := !j :: !insns;
            if is_cf !j then continue := false;
            incr j
          done
        end
        else j := head + 1;
        let insn_list = List.rev !insns in
        let last = List.nth insn_list (List.length insn_list - 1) in
        let body, term_insn =
          if is_cf last then
            (List.filter (fun k -> k <> last) insn_list, Some last)
          else (insn_list, None)
        in
        let c = { c_id = !next_chunk_id; head; body; term_insn; term = T_fall } in
        incr next_chunk_id;
        chunks := c :: !chunks;
        List.iter (fun k -> chunk_of.(k) <- c.c_id) insn_list;
        i := last + 1
      end
      else incr i
    done;
    let chunks = Array.of_list (List.rev !chunks) in
    let nchunks = Array.length chunks in
    if nchunks = 0 then raise (Fail Empty_program);
    let chunk_head_of idx =
      let c = chunk_of.(idx) in
      assert (c >= 0);
      c
    in

    (* resolve terminators *)
    Array.iter
      (fun c ->
        match c.term_insn with
        | None ->
          let last = match List.rev c.body with x :: _ -> x | [] -> c.head in
          c.term <- (match Cfg.kind cfg last with Cfg.Stop -> T_halt | _ -> T_fall)
        | Some t ->
          c.term <-
            (match Cfg.kind cfg t with
             | Cfg.Cond_branch { taken; _ } -> T_branch { taken = chunk_head_of taken }
             | Cfg.Jump tgt -> T_jump (chunk_head_of tgt)
             | Cfg.Call { targets; _ } ->
               T_call
                 { targets = List.map chunk_head_of targets;
                   indirect = Insn.is_indirect program.Program.text.(t) }
             | Cfg.Ret { return_points } ->
               (match Hashtbl.find_opt funnel_of_ret t with
                | Some cls -> T_funnel cls
                | None -> T_ret { rps = List.map chunk_head_of return_points })
             | Cfg.Indirect_jump { targets } ->
               T_indirect { targets = List.map chunk_head_of targets }
             | Cfg.Stop -> T_halt
             | Cfg.Straight -> T_fall))
      chunks;

    let next_chunk c =
      (* the chunk beginning right after this chunk's last instruction *)
      let last = match c.term_insn with Some t -> t | None -> (match List.rev c.body with x :: _ -> x | [] -> c.head) in
      if last + 1 < n && chunk_of.(last + 1) >= 0 then Some chunk_of.(last + 1) else None
    in

    (* funnel class -> (funnel id in a dense numbering, members, rps) *)
    let funnel_ids = Hashtbl.create 8 in
    List.iteri (fun k (c, _) -> Hashtbl.replace funnel_ids c k) funnel_classes;
    let funnel_rps =
      List.map
        (fun (_, members) ->
          List.concat_map
            (fun r ->
              match Cfg.kind cfg r with
              | Cfg.Ret { return_points } -> List.map chunk_head_of return_points
              | _ -> [])
            members
          |> List.sort_uniq compare)
        funnel_classes
    in
    let funnel_rps = Array.of_list funnel_rps in
    let nfunnels = Array.length funnel_rps in

    (* ---- chunk-level in-degree and ret-in counts (dry run) ---- *)
    let indeg = Array.make nchunks 0 in
    let ret_in = Array.make nchunks 0 in
    indeg.(chunk_head_of entry_idx) <- 1;
    (* reset edge *)
    Array.iter
      (fun c ->
        let fall () =
          match next_chunk c with
          | Some d -> indeg.(d) <- indeg.(d) + 1
          | None -> ()
        in
        match c.term with
        | T_fall -> fall ()
        | T_branch { taken } ->
          indeg.(taken) <- indeg.(taken) + 1;
          fall ()
        | T_jump d -> indeg.(d) <- indeg.(d) + 1
        | T_call { targets; _ } -> List.iter (fun d -> indeg.(d) <- indeg.(d) + 1) targets
        | T_ret { rps } ->
          List.iter
            (fun d ->
              indeg.(d) <- indeg.(d) + 1;
              ret_in.(d) <- ret_in.(d) + 1)
            rps
        | T_funnel _ -> ()
        | T_indirect { targets } -> List.iter (fun d -> indeg.(d) <- indeg.(d) + 1) targets
        | T_halt -> ())
      chunks;
    Array.iter
      (fun rps ->
        List.iter
          (fun d ->
            indeg.(d) <- indeg.(d) + 1;
            ret_in.(d) <- ret_in.(d) + 1)
          rps)
      funnel_rps;
    Array.iteri (fun c r -> if r > 1 then assert false else ignore c) ret_in;

    let head_is_mux c = (not scfp) && indeg.(c) >= 2 in
    let needs_shim c = ret_in.(c) >= 1 && indeg.(c) >= 2 in

    (* ---- node construction ---- *)
    let nodes : node list ref = ref [] in
    let order : int list ref = ref [] in
    let node_count = ref 0 in
    let node_tbl = Hashtbl.create 64 in
    let new_node kind role slots =
      let id = !node_count in
      incr node_count;
      let node = { n_id = id; n_kind = kind; n_role = role; n_slots = slots; n_in = []; n_out = [] } in
      nodes := node :: !nodes;
      order := id :: !order;
      Hashtbl.replace node_tbl id node;
      node
    in
    let node_of id = Hashtbl.find node_tbl id in

    let shim_of_chunk = Hashtbl.create 8 in
    let head_node_of_chunk = Array.make nchunks (-1) in
    let last_node_of_chunk = Array.make nchunks (-1) in
    let node_of_orig = Array.make n (-1) in
    let slot_of_orig = Array.make n (-1) in
    let piece_fall_pairs = ref [] in
    let bridge_of_chunk = Hashtbl.create 8 in

    Array.iter
      (fun c ->
        (* return shim first: it must sit at the call site + 4 *)
        if needs_shim c.c_id then begin
          let slots = Array.make 6 S_pad in
          slots.(5) <- S_jump_out;
          let shim = new_node Block.Exec Shim slots in
          Hashtbl.replace shim_of_chunk c.c_id shim.n_id
        end;

        let head_kind = if head_is_mux c.c_id then Block.Mux else Block.Exec in
        (* split into pieces *)
        let pieces = ref [] in
        let cur = ref [] in
        let cur_kind = ref head_kind in
        let cap () = Block.insn_slots !cur_kind in
        let pos () = List.length !cur in
        let flush () =
          let k = !cur_kind in
          let c = cap () in
          let slots = Array.make c S_pad in
          List.iteri (fun idx s -> slots.(idx) <- s) (List.rev !cur);
          ignore c;
          let node = new_node k Primary slots in
          (match !pieces with prev :: _ -> piece_fall_pairs := (prev, node.n_id) :: !piece_fall_pairs | [] -> ());
          pieces := node.n_id :: !pieces;
          cur := [];
          cur_kind := Block.Exec
        in
        let add slot = cur := slot :: !cur in
        let place_body i =
          let insn = program.Program.text.(i) in
          if pos () = cap () then flush ();
          if Insn.is_store insn then
            while Block.store_banned_slot !cur_kind (pos ()) do
              add S_pad;
              if pos () = cap () then flush ()
            done;
          node_of_orig.(i) <- !node_count;
          (* the node is created at flush time; record position and fix node id later *)
          slot_of_orig.(i) <- pos ();
          add (S_orig i)
        in
        (* record node ids properly: we patch node_of_orig after flush by
           scanning slots; simpler: do a second pass after all flushes *)
        List.iter place_body c.body;
        let place_last slot =
          if pos () = cap () then flush ();
          while pos () < cap () - 1 do add S_pad done;
          (match slot with
           | S_orig i -> slot_of_orig.(i) <- pos ()
           | S_pad | S_jump_out | S_synth _ -> ());
          add slot;
          flush ()
        in
        (match c.term with
         | T_branch _ | T_jump _ | T_call _ | T_ret _ | T_indirect _ ->
           (match c.term_insn with
            | Some t -> place_last (S_orig t)
            | None -> assert false)
         | T_funnel _ -> place_last S_jump_out
         | T_halt ->
           (match c.term_insn with
            | Some t -> place_last (S_orig t)
            | None -> if !cur <> [] || !pieces = [] then flush ())
         | T_fall ->
           let fall_to_mux =
             match next_chunk c with Some d -> head_is_mux d | None -> false
           in
           if fall_to_mux then place_last S_jump_out
           else if !cur <> [] || !pieces = [] then flush ());
        let pieces = List.rev !pieces in
        (match pieces with
         | [] -> assert false
         | first :: _ ->
           head_node_of_chunk.(c.c_id) <- first;
           last_node_of_chunk.(c.c_id) <- List.nth pieces (List.length pieces - 1));
        (* bridge for a conditional branch falling into a mux head *)
        (match c.term with
         | T_branch _ ->
           (match next_chunk c with
            | Some d when head_is_mux d ->
              let slots = Array.make 6 S_pad in
              slots.(5) <- S_jump_out;
              let b = new_node Block.Exec Bridge slots in
              Hashtbl.replace bridge_of_chunk c.c_id b.n_id
            | Some _ | None -> ())
         | T_fall | T_jump _ | T_call _ | T_ret _ | T_funnel _ | T_indirect _ | T_halt -> ()))
      chunks;

    (* fix node_of_orig: scan every node's slots *)
    List.iter
      (fun nd ->
        Array.iteri
          (fun s slot ->
            match slot with
            | S_orig i ->
              node_of_orig.(i) <- nd.n_id;
              slot_of_orig.(i) <- s
            | S_pad | S_jump_out | S_synth _ -> ())
          nd.n_slots)
      !nodes;

    (* funnel nodes *)
    let funnel_node = Array.make nfunnels (-1) in
    List.iteri
      (fun k (_cls, members) ->
        let indeg = List.length members in
        let kind = if (not scfp) && indeg >= 2 then Block.Mux else Block.Exec in
        let cap = Block.insn_slots kind in
        let slots = Array.make cap S_pad in
        slots.(cap - 1) <- S_synth (Insn.Jalr (Reg.zero, Reg.ra, 0));
        let f = new_node kind Funnel slots in
        funnel_node.(k) <- f.n_id)
      funnel_classes;

    (* ---- edges ---- *)
    let add_edge e_src e_dst flavor =
      let e = { e_src; e_dst; flavor } in
      (match e_src with
       | From s -> (node_of s).n_out <- (node_of s).n_out @ [ e ]
       | Reset -> ());
      (node_of e_dst).n_in <- (node_of e_dst).n_in @ [ e ];
      e
    in
    let indirect_edges_to_chunk : (int, edge list) Hashtbl.t = Hashtbl.create 8 in
    let note_indirect chunk e =
      Hashtbl.replace indirect_edges_to_chunk chunk
        (e :: (try Hashtbl.find indirect_edges_to_chunk chunk with Not_found -> []))
    in

    let reset_edge = add_edge Reset head_node_of_chunk.(chunk_head_of entry_idx) F_reset in

    List.iter (fun (a, b) -> ignore (add_edge (From a) b F_fall)) (List.rev !piece_fall_pairs);

    let ret_destination d =
      match Hashtbl.find_opt shim_of_chunk d with
      | Some s -> s
      | None -> head_node_of_chunk.(d)
    in

    Array.iter
      (fun c ->
        let src = From last_node_of_chunk.(c.c_id) in
        (match Hashtbl.find_opt shim_of_chunk c.c_id with
         | Some s -> ignore (add_edge (From s) head_node_of_chunk.(c.c_id) F_jump)
         | None -> ());
        match c.term with
        | T_fall ->
          (match next_chunk c with
           | Some d ->
             if head_is_mux d then ignore (add_edge src head_node_of_chunk.(d) F_jump)
             else ignore (add_edge src head_node_of_chunk.(d) F_fall)
           | None -> ())
        | T_branch { taken } ->
          ignore (add_edge src head_node_of_chunk.(taken) F_taken);
          (match next_chunk c with
           | Some d ->
             if head_is_mux d then begin
               let b = Hashtbl.find bridge_of_chunk c.c_id in
               ignore (add_edge src b F_fall);
               ignore (add_edge (From b) head_node_of_chunk.(d) F_jump)
             end
             else ignore (add_edge src head_node_of_chunk.(d) F_fall)
           | None -> ())
        | T_jump d -> ignore (add_edge src head_node_of_chunk.(d) F_jump)
        | T_call { targets; indirect } ->
          List.iter
            (fun d ->
              let e = add_edge src head_node_of_chunk.(d) (if indirect then F_indirect else F_call) in
              if indirect then note_indirect d e)
            targets
        | T_ret { rps } -> List.iter (fun d -> ignore (add_edge src (ret_destination d) F_ret)) rps
        | T_funnel cls ->
          let k = Hashtbl.find funnel_ids cls in
          ignore (add_edge src funnel_node.(k) F_jump)
        | T_indirect { targets } ->
          List.iter
            (fun d ->
              let e = add_edge src head_node_of_chunk.(d) F_indirect in
              note_indirect d e)
            targets
        | T_halt -> ())
      chunks;

    Array.iteri
      (fun k rps ->
        List.iter (fun d -> ignore (add_edge (From funnel_node.(k)) (ret_destination d) F_ret)) rps)
      funnel_rps;

    (* ---- multiplexor trees: reduce every node to ≤ 2 in-edges ---- *)
    if not scfp then begin
      let work = Queue.create () in
      List.iter (fun nd -> Queue.add nd.n_id work) (List.rev !nodes);
      while not (Queue.is_empty work) do
        let id = Queue.pop work in
        let nd = node_of id in
        while List.length nd.n_in > 2 do
          match nd.n_in with
          | e1 :: e2 :: rest ->
            let slots = Array.make 5 S_pad in
            slots.(4) <- S_jump_out;
            let tramp = new_node Block.Mux Trampoline slots in
            e1.e_dst <- tramp.n_id;
            e2.e_dst <- tramp.n_id;
            tramp.n_in <- [ e1; e2 ];
            let bridge_edge = { e_src = From tramp.n_id; e_dst = id; flavor = F_jump } in
            tramp.n_out <- [ bridge_edge ];
            nd.n_in <- rest @ [ bridge_edge ]
          | _ -> assert false
        done
      done
    end;

    (* ---- kind consistency ---- *)
    List.iter
      (fun nd ->
        let d = List.length nd.n_in in
        if scfp then begin
          assert (d >= 1);
          assert (nd.n_kind = Block.Exec);
          (* the destination link patch needs a unique jalr predecessor *)
          let jalr_in =
            List.length (List.filter (fun e -> e.flavor = F_ret || e.flavor = F_indirect) nd.n_in)
          in
          if jalr_in > 1 then raise (Fail (Indirect_fanin_unsupported { sites = jalr_in }))
        end
        else begin
          let expected = if d >= 2 then Block.Mux else Block.Exec in
          assert (d >= 1 && d <= 2);
          assert (nd.n_kind = expected)
        end)
      !nodes;

    (* ---- addresses and ports ---- *)
    let order = Array.of_list (List.rev !order) in
    let position = Hashtbl.create 64 in
    Array.iteri (fun k id -> Hashtbl.replace position id k) order;
    let base_of id = program.Program.text_base + (Block.size_bytes * Hashtbl.find position id) in
    let exit_of id = base_of id + Block.exit_offset in
    let port_of_edge e =
      let dst = node_of e.e_dst in
      if scfp then base_of dst.n_id (* single port at offset 0, any fan-in *)
      else begin
        let offsets = Block.port_offsets dst.n_kind in
        let rec find k = function
          | [] -> assert false
          | e' :: rest -> if e' == e then k else find (k + 1) rest
        in
        let idx = find 0 dst.n_in in
        base_of dst.n_id + List.nth offsets idx
      end
    in
    let prev_pc_of_edge e =
      match e.e_src with Reset -> Block.reset_prev_pc | From s -> exit_of s
    in

    (* adjacency sanity for fall edges *)
    List.iter
      (fun nd ->
        List.iter
          (fun e ->
            if e.flavor = F_fall then begin
              match e.e_src with
              | From s ->
                assert (Hashtbl.find position e.e_dst = Hashtbl.find position s + 1);
                assert ((node_of e.e_dst).n_kind = Block.Exec)
              | Reset -> assert false
            end)
          nd.n_in)
      !nodes;

    (* ---- instruction patching ---- *)
    let out_edge_of_flavor nd fs =
      List.find_opt (fun e -> List.mem e.flavor fs) nd.n_out
    in
    let patch_control nd slot_idx insn =
      let slot_addr = base_of nd.n_id + Block.first_insn_offset nd.n_kind + (4 * slot_idx) in
      match insn with
      | Insn.Branch (c, r1, r2, _) ->
        (match out_edge_of_flavor nd [ F_taken ] with
         | Some e ->
           let port = port_of_edge e in
           let woff = (port - slot_addr) / 4 in
           if not (Sofia_isa.Encoding.branch_offset_fits woff) then
             raise (Fail (Branch_out_of_range { from_addr = slot_addr; to_addr = port }));
           Insn.Branch (c, r1, r2, woff)
         | None -> insn)
      | Insn.Jal (rd, _) ->
        (match out_edge_of_flavor nd [ F_jump; F_call ] with
         | Some e ->
           let port = port_of_edge e in
           let woff = (port - slot_addr) / 4 in
           if not (Sofia_isa.Encoding.jal_offset_fits woff) then
             raise (Fail (Branch_out_of_range { from_addr = slot_addr; to_addr = port }));
           Insn.Jal (rd, woff)
         | None -> insn)
      | Insn.Jalr _ | Insn.Halt _ | Insn.Alu_r _ | Insn.Alu_i _ | Insn.Lui _ | Insn.Load _
      | Insn.Store _ -> insn
    in
    let synth_jump nd slot_idx =
      let slot_addr = base_of nd.n_id + Block.first_insn_offset nd.n_kind + (4 * slot_idx) in
      match out_edge_of_flavor nd [ F_jump ] with
      | Some e ->
        let port = port_of_edge e in
        let woff = (port - slot_addr) / 4 in
        if not (Sofia_isa.Encoding.jal_offset_fits woff) then
          raise (Fail (Branch_out_of_range { from_addr = slot_addr; to_addr = port }));
        Insn.Jal (Reg.zero, woff)
      | None -> assert false
    in

    (* code-pointer resolution for la / .word relocations *)
    let port_for_symbol sym =
      let address =
        match Program.symbol program sym with Some a -> a | None -> assert false
      in
      match Program.index_of_address program address with
      | None -> raise (Fail (Code_pointer_unresolved sym))
      | Some idx ->
        if not reachable.(idx) then raise (Fail (Code_pointer_unresolved sym))
        else begin
          let chunk = chunk_of.(idx) in
          match Hashtbl.find_opt indirect_edges_to_chunk chunk with
          | Some [ e ] -> port_of_edge e
          | Some (_ :: _ :: _) -> raise (Fail (Code_pointer_ambiguous sym))
          | Some [] | None -> raise (Fail (Code_pointer_unresolved sym))
        end
    in
    let la_patch = Hashtbl.create 8 in
    List.iter
      (fun { Program.hi_index; lo_index; la_symbol } ->
        if reachable.(hi_index) then begin
          let port = port_for_symbol la_symbol in
          Hashtbl.replace la_patch hi_index (`Hi port);
          Hashtbl.replace la_patch lo_index (`Lo port)
        end)
      program.Program.la_relocs;

    (* ---- final block table ---- *)
    let blocks =
      Array.map
        (fun id ->
          let nd = node_of id in
          let cap = Block.insn_slots nd.n_kind in
          let insns = Array.make cap Insn.nop in
          let orig_indices = Array.make cap None in
          Array.iteri
            (fun s slot ->
              match slot with
              | S_pad -> insns.(s) <- Insn.nop
              | S_synth i -> insns.(s) <- i
              | S_jump_out -> insns.(s) <- synth_jump nd s
              | S_orig i ->
                orig_indices.(s) <- Some i;
                let insn = program.Program.text.(i) in
                let insn =
                  match Hashtbl.find_opt la_patch i with
                  | Some (`Hi port) ->
                    (match insn with
                     | Insn.Lui (rd, _) -> Insn.Lui (rd, (port lsr 16) land 0xFFFF)
                     | _ -> insn)
                  | Some (`Lo port) ->
                    (match insn with
                     | Insn.Alu_i (Or, rd, rs, _) -> Insn.Alu_i (Or, rd, rs, port land 0xFFFF)
                     | _ -> insn)
                  | None -> insn
                in
                insns.(s) <- patch_control nd s insn)
            nd.n_slots;
          {
            base = base_of id;
            kind = nd.n_kind;
            role = nd.n_role;
            insns;
            entry_prev_pcs = List.map prev_pc_of_edge nd.n_in;
            orig_indices;
          })
        order
    in

    (* ---- patched data image ---- *)
    let data = Bytes.copy program.Program.data in
    List.iter
      (fun (off, sym) ->
        let port = port_for_symbol sym in
        Bytes.blit (Sofia_util.Word.bytes_of_word32_le port) 0 data off 4)
      program.Program.data_word_relocs;

    (* ---- results ---- *)
    let addr_of_orig = Array.make n (-1) in
    for i = 0 to n - 1 do
      if node_of_orig.(i) >= 0 then begin
        let nd = node_of node_of_orig.(i) in
        addr_of_orig.(i) <-
          base_of nd.n_id + Block.first_insn_offset nd.n_kind + (4 * slot_of_orig.(i))
      end
    done;

    let count_role r = Array.fold_left (fun acc b -> if b.role = r then acc + 1 else acc) 0 blocks in
    let count_kind k = Array.fold_left (fun acc b -> if b.kind = k then acc + 1 else acc) 0 blocks in
    let pad_slots =
      Array.fold_left
        (fun acc b ->
          acc
          + Array.fold_left
              (fun a (o : int option) -> match o with None -> a + 1 | Some _ -> a)
              0 b.orig_indices)
        0 blocks
      - (count_role Bridge + count_role Shim + count_role Trampoline + count_role Funnel)
    in
    let unreachable_dropped =
      let r = ref 0 in
      Array.iteri (fun i _ -> if not reachable.(i) then incr r) program.Program.text;
      !r
    in
    let stats =
      {
        original_insns = n;
        original_text_bytes = 4 * n;
        transformed_text_bytes = Block.size_bytes * Array.length blocks;
        exec_blocks = count_kind Block.Exec;
        mux_blocks = count_kind Block.Mux;
        bridge_blocks = count_role Bridge;
        shim_blocks = count_role Shim;
        trampoline_blocks = count_role Trampoline;
        funnel_blocks = count_role Funnel;
        pad_slots;
        unreachable_dropped;
      }
    in
    Result.Ok
      {
        blocks;
        entry = port_of_edge reset_edge;
        text_base = program.Program.text_base;
        data;
        data_base = program.Program.data_base;
        addr_of_orig;
        stats;
      }
  with Fail e -> Result.Error e

let layout_exn ?backend program =
  match layout ?backend program with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Layout.layout: %a" pp_error e)

let block_at t address =
  let rel = address - t.text_base in
  if rel < 0 then None
  else
    let idx = rel / Block.size_bytes in
    if idx < Array.length t.blocks then Some t.blocks.(idx) else None

let pp_block fmt b =
  Format.fprintf fmt "@[<v>%08x %a" b.base Block.pp_kind b.kind;
  (match b.role with
   | Primary -> ()
   | Bridge -> Format.fprintf fmt " (bridge)"
   | Shim -> Format.fprintf fmt " (shim)"
   | Trampoline -> Format.fprintf fmt " (trampoline)"
   | Funnel -> Format.fprintf fmt " (funnel)");
  Format.fprintf fmt " entries:[%s]"
    (String.concat ";" (List.map (Printf.sprintf "0x%08x") b.entry_prev_pcs));
  Array.iteri
    (fun s insn ->
      Format.fprintf fmt "@   i%d: %a%s" (s + 1) Insn.pp insn
        (match b.orig_indices.(s) with Some i -> Printf.sprintf "  ; orig #%d" i | None -> ""))
    b.insns;
  Format.fprintf fmt "@]"
