open Sofia_util

type error = Bad_magic | Unsupported_version of int | Truncated | Checksum_mismatch

let pp_error fmt = function
  | Bad_magic -> Format.pp_print_string fmt "not a SOFIA image (bad magic)"
  | Unsupported_version v -> Format.fprintf fmt "unsupported format version %d" v
  | Truncated -> Format.pp_print_string fmt "truncated image file"
  | Checksum_mismatch -> Format.pp_print_string fmt "payload checksum mismatch"

module Loaded = struct
  type t = {
    backend : Backend_id.t;
    nonce : int;
    entry : int;
    text_base : int;
    cipher : int array;
    patches : int array;
    data : Bytes.t;
    data_base : int;
  }
end

let magic = 0x53464941 (* "SFIA" *)

(* Version 1 is the original SOFIA-only format and its byte layout is
   frozen — digests of existing artifacts must stay stable. Version 2
   adds a backend tag and a patch-word count to the header and appends
   the SCFP patch table between the text and the data; SOFIA images
   keep serializing as v1 bit-for-bit. *)
let version = 1
let version_v2 = 2
let header_bytes = 0x24
let header_bytes_v2 = 0x2C

let crc32 bytes ~off ~len =
  let crc = ref Word.mask32 in
  for i = off to off + len - 1 do
    crc := !crc lxor Bytes.get_uint8 bytes i;
    for _ = 1 to 8 do
      let mask = Word.u32 (- (!crc land 1)) in
      crc := (!crc lsr 1) lxor (0xEDB88320 land mask)
    done
  done;
  Word.u32 (!crc lxor Word.mask32)

let serialize (image : Image.t) =
  let v2 = image.Image.backend <> Backend_id.Sofia in
  let hdr = if v2 then header_bytes_v2 else header_bytes in
  let text_words = Array.length image.Image.cipher in
  let patch_words = Array.length image.Image.patches in
  let data_len = Bytes.length image.Image.data in
  let total = hdr + (4 * text_words) + (4 * patch_words) + data_len in
  let b = Bytes.make total '\000' in
  let put off v = Bytes.blit (Word.bytes_of_word32_le v) 0 b off 4 in
  Array.iteri (fun i w -> put (hdr + (4 * i)) w) image.Image.cipher;
  Array.iteri (fun i w -> put (hdr + (4 * text_words) + (4 * i)) w) image.Image.patches;
  Bytes.blit image.Image.data 0 b (hdr + (4 * (text_words + patch_words))) data_len;
  let crc = crc32 b ~off:hdr ~len:(total - hdr) in
  put 0x00 magic;
  put 0x04 (if v2 then version_v2 else version);
  put 0x08 image.Image.nonce;
  put 0x0C image.Image.entry;
  put 0x10 text_words;
  put 0x14 image.Image.data_base;
  put 0x18 data_len;
  put 0x1C crc;
  put 0x20 image.Image.text_base;
  if v2 then begin
    put 0x24 (Backend_id.tag image.Image.backend);
    put 0x28 patch_words
  end;
  b

let deserialize b =
  let len = Bytes.length b in
  if len < header_bytes then Error Truncated
  else begin
    let get off = Word.word32_of_bytes_le b off in
    if get 0x00 <> magic then Error Bad_magic
    else begin
      let v = get 0x04 in
      if v <> version && v <> version_v2 then Error (Unsupported_version v)
      else begin
        let hdr = if v = version then header_bytes else header_bytes_v2 in
        if len < hdr then Error Truncated
        else begin
          let backend =
            if v = version then Some Backend_id.Sofia else Backend_id.of_tag (get 0x24)
          in
          match backend with
          | None -> Error (Unsupported_version v)
          | Some backend ->
            let text_words = get 0x10 in
            let patch_words = if v = version then 0 else get 0x28 in
            let data_len = get 0x18 in
            if len < hdr + (4 * (text_words + patch_words)) + data_len then Error Truncated
            else begin
              let payload_len = (4 * (text_words + patch_words)) + data_len in
              if crc32 b ~off:hdr ~len:payload_len <> get 0x1C then Error Checksum_mismatch
              else begin
                let cipher = Array.init text_words (fun i -> get (hdr + (4 * i))) in
                let patches =
                  Array.init patch_words (fun i -> get (hdr + (4 * text_words) + (4 * i)))
                in
                let data = Bytes.sub b (hdr + (4 * (text_words + patch_words))) data_len in
                Ok
                  {
                    Loaded.backend;
                    nonce = get 0x08;
                    entry = get 0x0C;
                    text_base = get 0x20;
                    cipher;
                    patches;
                    data;
                    data_base = get 0x14;
                  }
              end
            end
        end
      end
    end
  end

let save image ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (serialize image))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      deserialize b)

let image_of_loaded (l : Loaded.t) =
  let nblocks = Array.length l.Loaded.cipher / Block.words_per_block in
  let blocks =
    Array.init nblocks (fun k ->
      let cipher_words =
        Array.sub l.Loaded.cipher (Block.words_per_block * k) Block.words_per_block
      in
      {
        Image.base = l.Loaded.text_base + (Block.size_bytes * k);
        kind = Block.Exec (* unknown without keys; the runner never reads it *);
        role = Layout.Primary;
        insns = [||];
        mac = 0L;
        plain_words = [||];
        cipher_words;
        entry_prev_pcs = [];
        orig_indices = [||];
      })
  in
  {
    Image.backend = l.Loaded.backend;
    nonce = l.Loaded.nonce;
    entry = l.Loaded.entry;
    text_base = l.Loaded.text_base;
    blocks;
    cipher = l.Loaded.cipher;
    patches = l.Loaded.patches;
    data = l.Loaded.data;
    data_base = l.Loaded.data_base;
    addr_of_orig = [||];
    stats =
      {
        Layout.original_insns = 0;
        original_text_bytes = 0;
        transformed_text_bytes = 4 * (Array.length l.Loaded.cipher + Array.length l.Loaded.patches);
        exec_blocks = 0;
        mux_blocks = 0;
        bridge_blocks = 0;
        shim_blocks = 0;
        trampoline_blocks = 0;
        funnel_blocks = 0;
        pad_slots = 0;
        unreachable_dropped = 0;
      };
  }
