(** On-disk format for protected images — what would be programmed into
    the target's non-volatile memory (paper §III: "in production the
    transformed binary can be stored and executed from the target's
    non-volatile memory").

    The container stores only what the device needs: the encrypted
    text, the data image, the entry port and ω. It deliberately holds
    no plaintext, no MACs in the clear and no keys — everything
    sensitive stays inside the SOFIA core. A CRC-32 of the payload
    detects accidental corruption (malicious corruption is the SI
    mechanism's job at run time).

    Layout (little-endian 32-bit words):

    {v
    0x00  magic "SFIA"        0x10  text word count
    0x04  format version (1)  0x14  data base
    0x08  nonce ω             0x18  data byte count
    0x0C  entry address       0x1C  payload CRC-32
    0x20  text base           0x24... encrypted text, then data
    v}

    Version 1 is frozen: SOFIA images always serialize as v1,
    bit-for-bit, so existing digests stay stable. Non-SOFIA backends
    use version 2, which extends the header by two words —
    0x24 backend tag, 0x28 patch word count — and inserts the SCFP
    patch table between the text and the data (payload starts at
    0x2C).

    Loading returns a {!Loaded.t}: enough to run on the SOFIA core.
    Plaintext-side metadata (per-block instruction views, statistics,
    source mapping) exists only in the in-memory {!Image.t} produced at
    protection time. *)

type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Checksum_mismatch

val pp_error : Format.formatter -> error -> unit

val crc32 : Bytes.t -> off:int -> len:int -> int
(** The container's CRC-32 (reflected, poly [0xEDB88320]) over a byte
    range — shared with the persistent store's envelope so both layers
    detect accidental corruption identically. *)

module Loaded : sig
  type t = {
    backend : Backend_id.t;
    nonce : int;
    entry : int;
    text_base : int;
    cipher : int array;
    patches : int array;  (** SCFP patch table; empty for v1/SOFIA *)
    data : Bytes.t;
    data_base : int;
  }
end

val serialize : Image.t -> Bytes.t
(** Encode an image into the container format. *)

val deserialize : Bytes.t -> (Loaded.t, error) result

val save : Image.t -> path:string -> unit
(** @raise Sys_error on I/O failure. *)

val load : path:string -> (Loaded.t, error) result
(** @raise Sys_error on I/O failure. *)

val image_of_loaded : Loaded.t -> Image.t
(** Reconstruct a runnable {!Image.t} from a loaded container. The
    plaintext-side block views are {e not} recoverable without keys, so
    the per-block metadata is filled with ciphertext-only placeholders;
    the SOFIA runner needs none of it. *)
