type block = {
  base : int;
  kind : Block.kind;
  role : Layout.role;
  insns : Sofia_isa.Insn.t array;
  mac : int64;
  plain_words : int array;
  cipher_words : int array;
  entry_prev_pcs : int list;
  orig_indices : int option array;
}

type t = {
  backend : Backend_id.t;
  nonce : int;
  entry : int;
  text_base : int;
  blocks : block array;
  cipher : int array;
  patches : int array;
  data : Bytes.t;
  data_base : int;
  addr_of_orig : int array;
  stats : Layout.stats;
}

let text_size_bytes t = 4 * (Array.length t.cipher + Array.length t.patches)

(* the words an artifact MAC must cover: under SCFP the patch table is
   as load-bearing as the ciphertext (a tampered patch redirects an
   edge), so it joins the authenticated span *)
let authenticated_words t =
  match t.backend with
  | Backend_id.Sofia -> t.cipher
  | Backend_id.Scfp -> Array.append t.cipher t.patches
let word_count t = Array.length t.cipher

let patch_base t = t.text_base + (4 * Array.length t.cipher)

let fetch t addr =
  let rel = addr - t.text_base in
  if rel < 0 || rel mod 4 <> 0 then None
  else
    let i = rel / 4 in
    if i < Array.length t.cipher then Some t.cipher.(i) else None

let with_tampered_word t ~address ~value =
  let rel = address - t.text_base in
  if rel < 0 || rel mod 4 <> 0 || rel / 4 >= Array.length t.cipher then
    invalid_arg "Image.with_tampered_word: address outside text";
  let cipher = Array.copy t.cipher in
  cipher.(rel / 4) <- value land 0xFFFF_FFFF;
  let bi = rel / (4 * Block.words_per_block) in
  let blocks = Array.copy t.blocks in
  let b = blocks.(bi) in
  let cipher_words = Array.copy b.cipher_words in
  cipher_words.(rel / 4 mod Block.words_per_block) <- value land 0xFFFF_FFFF;
  blocks.(bi) <- { b with cipher_words };
  { t with cipher; blocks }

let with_nonce_relabelled t ~nonce = { t with nonce }

let block_of_address t addr =
  let rel = addr - t.text_base in
  if rel < 0 then None
  else
    let i = rel / Block.size_bytes in
    if i < Array.length t.blocks then Some t.blocks.(i) else None
