(** The complete SOFIA binary transformation (paper §II-C, §III).

    For each block the plaintext pipeline is MAC-then-Encrypt:

    + compute the CBC-MAC M over the block's plaintext instruction
      words — k2 for execution blocks (6 words), k3 for multiplexor
      blocks (5 words);
    + interleave M with the instructions per the block geometry
      (M1 M2 i1…i6, or M1e1 M1e2 M2 i1…i5 with the duplicated first
      MAC word);
    + encrypt every word with the CTR keystream of the control-flow
      edge that reaches it: entry words with their predecessor's exit
      address as prevPC, interior words with the in-block chain, and a
      multiplexor block's M2 with prevPC = addr(M1e2) on both paths
      (Fig. 8). *)

val protect :
  ?domains:int ->
  ?backend:Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  Sofia_asm.Program.t ->
  (Image.t, Layout.error) result
(** Transform and encrypt an assembled program. [nonce] is ω, the
    8-bit program-version nonce stored with the binary. [backend]
    (default [Sofia]) selects the protection scheme: SOFIA's
    CTR + CBC-MAC pipeline above, or SCFP's sponge duplex with a
    patch table (see {!Scfp}).

    [domains] (default 1) fans the per-block work out over that many
    OCaml domains; block signing is independent per block under both
    backends, so the produced image is byte-identical to the
    sequential one (see the determinism battery in
    [test/parallel_tests.ml]). *)

val protect_exn :
  ?domains:int ->
  ?backend:Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  Sofia_asm.Program.t ->
  Image.t
(** @raise Invalid_argument on transformation errors. *)

val encrypt_layout :
  ?domains:int -> keys:Sofia_crypto.Keys.t -> nonce:int -> Layout.t -> Image.t
(** Encrypt an already-computed layout with the SOFIA pipeline
    (exposed so tests can inspect the plaintext layout and its
    encryption separately). *)

val scfp_encrypt_layout :
  ?domains:int -> keys:Sofia_crypto.Keys.t -> nonce:int -> Layout.t -> Image.t
(** Encrypt an already-computed SCFP-profile layout with the sponge
    duplex and build its patch table. *)

val expansion_ratio : Image.t -> float
(** Transformed text bytes / original text bytes (paper §IV-B:
    16,816 / 6,976 ≈ 2.41 for ADPCM). *)
