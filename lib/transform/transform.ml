module Keys = Sofia_crypto.Keys
module Ctr = Sofia_crypto.Ctr
module Cbc_mac = Sofia_crypto.Cbc_mac
module Encoding = Sofia_isa.Encoding

let encrypt_block ~(keys : Keys.t) ~nonce (b : Layout.block) : Image.block =
  let base = b.Layout.base in
  let insn_words = Array.map Encoding.encode b.Layout.insns in
  let mac_key = match b.Layout.kind with Block.Exec -> keys.Keys.k2 | Block.Mux -> keys.Keys.k3 in
  let mac = Cbc_mac.mac_words mac_key insn_words in
  let m1, m2 = Cbc_mac.split_tag mac in
  (* plaintext 8-word block with interleaved MAC words *)
  let plain_words =
    match b.Layout.kind with
    | Block.Exec -> Array.append [| m1; m2 |] insn_words
    | Block.Mux -> Array.append [| m1; m1; m2 |] insn_words
  in
  assert (Array.length plain_words = Block.words_per_block);
  (* per-word (prevPC, PC) pairs *)
  let prev_pcs =
    match (b.Layout.kind, b.Layout.entry_prev_pcs) with
    | Block.Exec, [ p1 ] ->
      [| p1; base; base + 4; base + 8; base + 12; base + 16; base + 20; base + 24 |]
    | Block.Mux, [ p1; p2 ] ->
      (* M2 (word 2) is encrypted with prevPC = addr(M1e2) on both
         control-flow paths (Fig. 8). *)
      [| p1; p2; base + 4; base + 8; base + 12; base + 16; base + 20; base + 24 |]
    | Block.Exec, _ | Block.Mux, _ -> assert false
  in
  let cipher_words =
    Array.mapi
      (fun i w -> Ctr.crypt_word keys.Keys.k1 ~nonce ~prev_pc:prev_pcs.(i) ~pc:(base + (4 * i)) w)
      plain_words
  in
  {
    Image.base;
    kind = b.Layout.kind;
    role = b.Layout.role;
    insns = b.Layout.insns;
    mac;
    plain_words;
    cipher_words;
    entry_prev_pcs = b.Layout.entry_prev_pcs;
    orig_indices = b.Layout.orig_indices;
  }

let encrypt_layout ?(domains = 1) ~keys ~nonce (l : Layout.t) : Image.t =
  (* per-block signing/encryption is embarrassingly parallel: every
     block's MAC and keystream depend only on the (immutable) keys,
     nonce and that block's own layout, and Par.map preserves index
     order — so the parallel image is bit-identical to the sequential
     one *)
  let blocks = Sofia_util.Par.map ~domains (encrypt_block ~keys ~nonce) l.Layout.blocks in
  let cipher =
    Array.concat (Array.to_list (Array.map (fun b -> b.Image.cipher_words) blocks))
  in
  {
    Image.nonce;
    entry = l.Layout.entry;
    text_base = l.Layout.text_base;
    blocks;
    cipher;
    data = l.Layout.data;
    data_base = l.Layout.data_base;
    addr_of_orig = l.Layout.addr_of_orig;
    stats = l.Layout.stats;
  }

let protect ?domains ~keys ~nonce program =
  if nonce < 0 || nonce > 0xFF then invalid_arg "Transform.protect: nonce must be 8-bit";
  Result.map (encrypt_layout ?domains ~keys ~nonce) (Layout.layout program)

let protect_exn ?domains ~keys ~nonce program =
  match protect ?domains ~keys ~nonce program with
  | Ok image -> image
  | Error e -> invalid_arg (Format.asprintf "Transform.protect: %a" Layout.pp_error e)

let expansion_ratio (image : Image.t) =
  float_of_int image.Image.stats.Layout.transformed_text_bytes
  /. float_of_int image.Image.stats.Layout.original_text_bytes
