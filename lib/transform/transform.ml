module Keys = Sofia_crypto.Keys
module Ctr = Sofia_crypto.Ctr
module Cbc_mac = Sofia_crypto.Cbc_mac
module Encoding = Sofia_isa.Encoding

let encrypt_block ~(keys : Keys.t) ~nonce (b : Layout.block) : Image.block =
  let base = b.Layout.base in
  let insn_words = Array.map Encoding.encode b.Layout.insns in
  let mac_key = match b.Layout.kind with Block.Exec -> keys.Keys.k2 | Block.Mux -> keys.Keys.k3 in
  let mac = Cbc_mac.mac_words mac_key insn_words in
  let m1, m2 = Cbc_mac.split_tag mac in
  (* plaintext 8-word block with interleaved MAC words *)
  let plain_words =
    match b.Layout.kind with
    | Block.Exec -> Array.append [| m1; m2 |] insn_words
    | Block.Mux -> Array.append [| m1; m1; m2 |] insn_words
  in
  assert (Array.length plain_words = Block.words_per_block);
  (* per-word (prevPC, PC) pairs *)
  let prev_pcs =
    match (b.Layout.kind, b.Layout.entry_prev_pcs) with
    | Block.Exec, [ p1 ] ->
      [| p1; base; base + 4; base + 8; base + 12; base + 16; base + 20; base + 24 |]
    | Block.Mux, [ p1; p2 ] ->
      (* M2 (word 2) is encrypted with prevPC = addr(M1e2) on both
         control-flow paths (Fig. 8). *)
      [| p1; p2; base + 4; base + 8; base + 12; base + 16; base + 20; base + 24 |]
    | Block.Exec, _ | Block.Mux, _ -> assert false
  in
  let cipher_words =
    Array.mapi
      (fun i w -> Ctr.crypt_word keys.Keys.k1 ~nonce ~prev_pc:prev_pcs.(i) ~pc:(base + (4 * i)) w)
      plain_words
  in
  {
    Image.base;
    kind = b.Layout.kind;
    role = b.Layout.role;
    insns = b.Layout.insns;
    mac;
    plain_words;
    cipher_words;
    entry_prev_pcs = b.Layout.entry_prev_pcs;
    orig_indices = b.Layout.orig_indices;
  }

let encrypt_layout ?(domains = 1) ~keys ~nonce (l : Layout.t) : Image.t =
  (* per-block signing/encryption is embarrassingly parallel: every
     block's MAC and keystream depend only on the (immutable) keys,
     nonce and that block's own layout, and Par.map preserves index
     order — so the parallel image is bit-identical to the sequential
     one *)
  let blocks = Sofia_util.Par.map ~domains (encrypt_block ~keys ~nonce) l.Layout.blocks in
  let cipher =
    Array.concat (Array.to_list (Array.map (fun b -> b.Image.cipher_words) blocks))
  in
  {
    Image.backend = Backend_id.Sofia;
    nonce;
    entry = l.Layout.entry;
    text_base = l.Layout.text_base;
    blocks;
    cipher;
    patches = [||];
    data = l.Layout.data;
    data_base = l.Layout.data_base;
    addr_of_orig = l.Layout.addr_of_orig;
    stats = l.Layout.stats;
  }

(* SCFP encryption: one duplex walk per block from its canonical
   (position-based) entry state, then a patch-table pass relating
   every exit state to its successors' entry states. The per-block
   walk is independent (canonical states are position-based), so the
   parallel image is byte-identical to the sequential one; the patch
   pass needs all exit states and runs sequentially. *)
let scfp_encrypt_layout ?(domains = 1) ~keys ~nonce (l : Layout.t) : Image.t =
  let s0 = Scfp.init ~keys ~nonce in
  let encrypted =
    Sofia_util.Par.map ~domains
      (fun (b : Layout.block) ->
        assert (b.Layout.kind = Block.Exec);
        let insn_words = Array.map Encoding.encode b.Layout.insns in
        let s_entry = Scfp.canonical ~s0 ~base:b.Layout.base in
        let cipher6, tag, s_exit = Scfp.encrypt_chain s_entry insn_words in
        let t0, t1 = tag in
        ( {
            Image.base = b.Layout.base;
            kind = b.Layout.kind;
            role = b.Layout.role;
            insns = b.Layout.insns;
            mac = Scfp.pack_tag tag;
            plain_words = Array.append [| t0; t1 |] insn_words;
            cipher_words = Array.append [| t0; t1 |] cipher6;
            entry_prev_pcs = b.Layout.entry_prev_pcs;
            orig_indices = b.Layout.orig_indices;
          },
          s_exit ))
      l.Layout.blocks
  in
  let blocks = Array.map fst encrypted and s_exits = Array.map snd encrypted in
  let nblocks = Array.length blocks in
  let tb = l.Layout.text_base in
  let text_end = tb + (Block.size_bytes * nblocks) in
  let block_aligned a = a >= tb && a < text_end && (a - tb) mod Block.size_bytes = 0 in
  (* index of the block whose exit word sits at prev-pc [p], if any *)
  let pred_index_of p =
    let rel = p - tb in
    if rel >= 0 && rel < text_end - tb && rel mod Block.size_bytes = Block.exit_offset then
      Some (rel / Block.size_bytes)
    else None
  in
  let patches = Array.make (nblocks * Scfp.patch_words_per_block) 0 in
  Array.iteri
    (fun i (b : Image.block) ->
      let base = b.Image.base in
      let set slot v = Scfp.patch_set patches i slot v in
      let fill slot = set slot (Scfp.filler ~s0 ~base ~slot) in
      let canon_of tgt = Scfp.canonical ~s0 ~base:tgt in
      (* slot 0: fall-through into the adjacent block *)
      if i + 1 < nblocks then
        set Scfp.slot_fall (Int64.logxor s_exits.(i) (canon_of (base + Block.size_bytes)))
      else fill Scfp.slot_fall;
      (* slot 1: taken-branch / jal target of the exit instruction *)
      let exit_pc = base + Block.exit_offset in
      (match b.Image.insns.(Array.length b.Image.insns - 1) with
      | Sofia_isa.Insn.Branch (_, _, _, woff) | Sofia_isa.Insn.Jal (_, woff)
        when block_aligned (exit_pc + (4 * woff)) ->
        set Scfp.slot_direct (Int64.logxor s_exits.(i) (canon_of (exit_pc + (4 * woff))))
      | _ -> fill Scfp.slot_direct);
      (* slot 2: destination-indexed jalr (return / indirect) entry —
         the layout guarantees at most one jalr-flavoured predecessor *)
      let jalr_preds =
        List.sort_uniq compare
          (List.filter_map
             (fun p ->
               match pred_index_of p with
               | Some u
                 when match blocks.(u).Image.insns.(Scfp.insn_words - 1) with
                      | Sofia_isa.Insn.Jalr _ -> true
                      | _ -> false ->
                 Some u
               | Some _ | None -> None)
             b.Image.entry_prev_pcs)
      in
      (match jalr_preds with
      | [] -> fill Scfp.slot_link
      | [ u ] ->
        set Scfp.slot_link
          (Int64.logxor (Scfp.link_arrive ~s_exit:s_exits.(u) ~target:base) (canon_of base))
      | _ :: _ :: _ -> invalid_arg "Transform.scfp: multiple jalr predecessors");
      (* slot 3: reserved *)
      fill 3)
    blocks;
  let cipher =
    Array.concat (Array.to_list (Array.map (fun b -> b.Image.cipher_words) blocks))
  in
  {
    Image.backend = Backend_id.Scfp;
    nonce;
    entry = l.Layout.entry;
    text_base = tb;
    blocks;
    cipher;
    patches;
    data = l.Layout.data;
    data_base = l.Layout.data_base;
    addr_of_orig = l.Layout.addr_of_orig;
    stats =
      {
        l.Layout.stats with
        Layout.transformed_text_bytes =
          l.Layout.stats.Layout.transformed_text_bytes + (4 * Array.length patches);
      };
  }

let protect ?domains ?(backend = Backend_id.Sofia) ~keys ~nonce program =
  if nonce < 0 || nonce > 0xFF then invalid_arg "Transform.protect: nonce must be 8-bit";
  let encrypt =
    match backend with
    | Backend_id.Sofia -> encrypt_layout ?domains ~keys ~nonce
    | Backend_id.Scfp -> scfp_encrypt_layout ?domains ~keys ~nonce
  in
  Result.map encrypt (Layout.layout ~backend program)

let protect_exn ?domains ?backend ~keys ~nonce program =
  match protect ?domains ?backend ~keys ~nonce program with
  | Ok image -> image
  | Error e -> invalid_arg (Format.asprintf "Transform.protect: %a" Layout.pp_error e)

let expansion_ratio (image : Image.t) =
  float_of_int image.Image.stats.Layout.transformed_text_bytes
  /. float_of_int image.Image.stats.Layout.original_text_bytes
