(* SCFP sponge-CFI mode primitives (Werner et al., "Sponge-Based
   Control-Flow Protection for IoT Devices"), shared by the transform
   (encrypt + patch table), the static verifier and the CPU frontends.

   The scheme replaces SOFIA's CTR-keystream + CBC-MAC pair with one
   rolling sponge state per hart:

   - A keyed initial state S0 = E_k2("SCFP" ‖ ω) seeds everything;
     the permutation itself is public (lib/crypto/sponge.ml).
   - Every block has a *canonical* entry state, purely position-based:
     S_B = P(S0 xor base/4). Convergent control flow needs no
     multiplexor blocks — all legitimate predecessors are patched
     (below) onto the same canonical state.
   - Fetch decrypts and absorbs: for each of the 6 instruction words,
     plain = cipher xor rate(S); S <- P(S xor cipher). After the 6th
     word the squeezed 64-bit tag (rate(S6), rate(P(S6))) must equal
     the two tag words stored in the clear at block offsets 0 and 4.
     The state after the tag squeeze, domain-separated, is the
     block's exit state S_exit = P(P(S6) xor 1).
   - A patch table (8 words per block, appended after the text) turns
     exit states into successor entry states; see [slot_fall] etc.
     Fall-through and direct targets use source-indexed additive
     patches S_exit(b) xor S_B(succ). Jalr edges (returns and indirect
     jumps) use a destination-indexed patch that *binds the source*:
     patch[t][slot_link] = P(S_exit(u) xor t/4) xor S_B(t) for the
     unique jalr-predecessor u — so redirecting a return to a foreign
     return point diverges the state even though both return points
     have valid patches (the layout's funnel/shim invariants guarantee
     the unique-u precondition, see layout.ml).

   Tampering with any ciphertext word, tag word or patch word — or
   traversing an edge no patch was derived for — leaves the rolling
   state off the canonical orbit, and the very next tag comparison
   fails: detection latency 0, same as SOFIA, with no MAC words, no
   mux trees and arbitrary fan-in. *)

module Keys = Sofia_crypto.Keys
module Rectangle = Sofia_crypto.Rectangle
module Sponge = Sofia_crypto.Sponge

let insn_words = 6 (* block words 2..7, offsets 8..28 *)
let tag_word_count = 2 (* block words 0..1, stored in the clear *)

let patch_slots = 4
let patch_words_per_block = 2 * patch_slots

(* patch-slot roles *)
let slot_fall = 0 (* source-indexed: fall-through to base+32 *)
let slot_direct = 1 (* source-indexed: taken branch / jal target *)
let slot_link = 2 (* destination-indexed: jalr (return/indirect) entry *)

let mask32 = 0xFFFF_FFFF

(* keyed initial state: "SCFP" tag ‖ ω under the MAC key *)
let init ~(keys : Keys.t) ~nonce =
  Rectangle.encrypt keys.Keys.k2
    (Int64.logor 0x5343_4650_0000_0000L (Int64.of_int (nonce land 0xFF)))

(* word-address pack, mirroring Ctr.widx's 28-bit domain *)
let pack_addr a = Int64.of_int ((a lsr 2) land 0x0FFF_FFFF)

(* canonical (position-based) entry state of the block at [base] *)
let canonical ~s0 ~base = Sponge.mix s0 (pack_addr base)

(* exit-state domain separation and junk-filler tags; all < 2^28 by
   design but disjoint from any text word address in practice *)
let exit_domain = 1L
let filler_domain slot = Int64.of_int (0x11 + slot)

(* filler for patch slots with no legitimate edge: derived, key- and
   position-dependent junk so the table has no recognisable structure *)
let filler ~s0 ~base ~slot = Sponge.mix (canonical ~s0 ~base) (filler_domain slot)

(* Run the decrypt-and-absorb duplex over one block's 6 ciphertext
   words starting from [state]; [cipher] is any array holding the
   block's 8 words starting at [off] (tag words at off, off+1).
   Returns (plain instruction words, squeezed tag, exit state). *)
let chain state cipher off =
  let plain = Array.make insn_words 0 in
  let s = ref state in
  for i = 0 to insn_words - 1 do
    let c = cipher.(off + tag_word_count + i) land mask32 in
    plain.(i) <- c lxor Sponge.rate !s;
    s := Sponge.absorb !s c
  done;
  let t0 = Sponge.rate !s in
  let s7 = Sponge.permute !s in
  let t1 = Sponge.rate s7 in
  (plain, (t0, t1), Sponge.mix s7 exit_domain)

(* Encryption side of the same walk: driven by the 6 plaintext words,
   produces the ciphertext words, tag and exit state. [chain] on the
   result reproduces the plaintext exactly (duplex symmetry). *)
let encrypt_chain state plain =
  let cipher = Array.make insn_words 0 in
  let s = ref state in
  for i = 0 to insn_words - 1 do
    let c = plain.(i) land mask32 lxor Sponge.rate !s in
    cipher.(i) <- c;
    s := Sponge.absorb !s c
  done;
  let t0 = Sponge.rate !s in
  let s7 = Sponge.permute !s in
  let t1 = Sponge.rate s7 in
  (cipher, (t0, t1), Sponge.mix s7 exit_domain)

(* link-patch arrival transform: P(S_exit(source) xor target/4) *)
let link_arrive ~s_exit ~target = Sponge.mix s_exit (pack_addr target)

(* 64-bit patches stored as two 32-bit words, low word first, in a
   flat array of [patch_words_per_block] words per block *)
let patch_get patches bi slot =
  let k = (bi * patch_words_per_block) + (2 * slot) in
  Int64.logor
    (Int64.of_int (patches.(k) land mask32))
    (Int64.shift_left (Int64.of_int (patches.(k + 1) land mask32)) 32)

let patch_set patches bi slot v =
  let k = (bi * patch_words_per_block) + (2 * slot) in
  patches.(k) <- Int64.to_int (Int64.logand v 0xFFFF_FFFFL);
  patches.(k + 1) <- Int64.to_int (Int64.shift_right_logical v 32)

let pack_tag (t0, t1) =
  Int64.logor
    (Int64.of_int (t0 land mask32))
    (Int64.shift_left (Int64.of_int (t1 land mask32)) 32)
