(** An encrypted SOFIA binary image: the output of the MAC-then-Encrypt
    transformation (paper §II-C) and the input of the SOFIA frontend.

    Each 8-word block carries its CBC-MAC words interleaved with the
    instructions, and every word is encrypted with the CTR keystream of
    the control-flow edge that legitimately reaches it. *)

type block = {
  base : int;
  kind : Block.kind;
  role : Layout.role;
  insns : Sofia_isa.Insn.t array;  (** plaintext instructions (debug/tests) *)
  mac : int64;  (** the block's CBC-MAC tag *)
  plain_words : int array;  (** 8 pre-encryption words, MAC words included *)
  cipher_words : int array;  (** 8 encrypted words as stored in memory *)
  entry_prev_pcs : int list;
  orig_indices : int option array;
      (** per instruction slot, the source-instruction index it carries *)
}

type t = {
  backend : Backend_id.t;  (** protection scheme this image was built for *)
  nonce : int;  (** ω — unique per program and program version (§II-A) *)
  entry : int;  (** entry port address *)
  text_base : int;
  blocks : block array;
  cipher : int array;  (** flat encrypted text, 8 words per block *)
  patches : int array;
      (** SCFP only: sponge patch table, [Scfp.patch_words_per_block]
          words per block, laid out after the text; empty under SOFIA *)
  data : Bytes.t;
  data_base : int;
  addr_of_orig : int array;
  stats : Layout.stats;
}

val text_size_bytes : t -> int
(** Size of the transformed text in bytes (patch table included under
    SCFP) — §IV-B's 16,816 B figure for ADPCM under SOFIA. *)

val authenticated_words : t -> int array
(** The word span an artifact-level MAC must cover: [cipher] under
    SOFIA, [cipher ++ patches] under SCFP — the patch table decides
    which edges the sponge accepts, so a persistent store that left it
    out of the authenticated span would hand tampered edge bindings to
    a warm start. *)

val patch_base : t -> int
(** Address of the first patch word (SCFP): text_base + text bytes. *)

val word_count : t -> int

val fetch : t -> int -> int option
(** [fetch t addr] reads the encrypted word at a text address; [None]
    outside the text section. *)

val with_tampered_word : t -> address:int -> value:int -> t
(** Copy of the image with one encrypted text word replaced — the basic
    code-injection primitive for the attack suite. *)

val with_nonce_relabelled : t -> nonce:int -> t
(** Copy of the image claiming a different ω without re-encrypting —
    models replaying a binary of another program version (§II-A's nonce
    uniqueness requirement). *)

val block_of_address : t -> int -> block option
