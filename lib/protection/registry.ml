(* The backend registry: SOFIA re-registered as the first backend,
   SCFP as the second. [find] is total over Backend_id — a registered
   entry exists for every id by construction (the register calls below
   run at module initialisation), and [register] replaces by id so a
   downstream experiment can swap a variant in. *)

module Backend_id = Sofia_transform.Backend_id
module Transform = Sofia_transform.Transform
module Verify = Sofia_transform.Verify
module Hwmodel = Sofia_hwmodel.Hwmodel

let registered : Backend.t list ref = ref []

let register (b : Backend.t) =
  registered := b :: List.filter (fun r -> r.Backend.id <> b.Backend.id) !registered

let all () =
  List.sort (fun a b -> compare (Backend_id.tag a.Backend.id) (Backend_id.tag b.Backend.id))
    !registered

let find id = List.find (fun b -> b.Backend.id = id) !registered

let of_name name = Option.map find (Backend_id.of_name name)

(* ---- SOFIA: CTR-mode RECTANGLE keyed per control-flow edge, with
   interleaved CBC-MAC words and multiplexor blocks for convergent
   control flow (de Clercq et al., DATE 2016) ---- *)
let sofia : Backend.t =
  {
    Backend.id = Backend_id.Sofia;
    describe =
      "control-flow-keyed CTR encryption + interleaved CBC-MAC, multiplexor blocks for fan-in";
    protect =
      (fun ?domains ~keys ~nonce program ->
        Transform.protect ?domains ~backend:Backend_id.Sofia ~keys ~nonce program);
    verify = (fun ?domains ~keys image -> Verify.check ?domains ~keys image);
    verify_against_source =
      (fun ?domains ~keys program image -> Verify.check_against_source ?domains ~keys program image);
    fetch = Backend.checked_fetch Backend_id.Sofia;
    hw =
      {
        Backend.synthesize = (fun () -> Hwmodel.synthesize_sofia ());
        area_overhead_pct = (fun () -> Hwmodel.area_overhead_pct ());
        clock_ratio = (fun () -> Hwmodel.clock_ratio ());
      };
  }

(* ---- SCFP: one rolling sponge-duplex state per hart; decrypt-and-
   absorb fetch, clear tag words, patch table for legitimate edges,
   state divergence as the violation signal (Werner et al.) ---- *)
let scfp : Backend.t =
  {
    Backend.id = Backend_id.Scfp;
    describe =
      "sponge-duplex decrypt-and-absorb, patch table per edge, state divergence as violation";
    protect =
      (fun ?domains ~keys ~nonce program ->
        Transform.protect ?domains ~backend:Backend_id.Scfp ~keys ~nonce program);
    verify = (fun ?domains ~keys image -> Verify.check ?domains ~keys image);
    verify_against_source =
      (fun ?domains ~keys program image -> Verify.check_against_source ?domains ~keys program image);
    fetch = Backend.checked_fetch Backend_id.Scfp;
    hw =
      {
        Backend.synthesize = (fun () -> Hwmodel.synthesize_scfp ());
        area_overhead_pct = (fun () -> Hwmodel.scfp_area_overhead_pct ());
        clock_ratio = (fun () -> Hwmodel.scfp_clock_ratio ());
      };
  }

let () =
  register sofia;
  register scfp
