(** First-class protection backends.

    A backend packages the four capabilities the rest of the stack
    needs from a protection scheme — transform a program into a
    protected image, independently verify an image, deliver a per-edge
    fetch verdict, and model the hardware cost — behind one record, so
    the service, CLI, campaign and bench layers dispatch on
    {!Sofia_transform.Backend_id} instead of hard-wiring the SOFIA
    pipeline. See {!Registry} for the registered backends. *)

type hw = {
  synthesize : unit -> Sofia_hwmodel.Hwmodel.synthesis;
  area_overhead_pct : unit -> float;  (** slices over the vanilla core *)
  clock_ratio : unit -> float;  (** vanilla fmax / backend fmax *)
}

type t = {
  id : Sofia_transform.Backend_id.t;
  describe : string;  (** one-line scheme summary for tooling output *)
  protect :
    ?domains:int ->
    keys:Sofia_crypto.Keys.t ->
    nonce:int ->
    Sofia_asm.Program.t ->
    (Sofia_transform.Image.t, Sofia_transform.Layout.error) result;
  verify :
    ?domains:int ->
    keys:Sofia_crypto.Keys.t ->
    Sofia_transform.Image.t ->
    Sofia_transform.Verify.issue list;
  verify_against_source :
    ?domains:int ->
    keys:Sofia_crypto.Keys.t ->
    Sofia_asm.Program.t ->
    Sofia_transform.Image.t ->
    Sofia_transform.Verify.issue list;
  fetch :
    keys:Sofia_crypto.Keys.t ->
    image:Sofia_transform.Image.t ->
    target:int ->
    prev_pc:int ->
    Sofia_cpu.Sofia_runner.fetch_outcome;
      (** The per-edge verdict — the exact pipeline the simulator's
          frontends run, not a re-implementation.
          @raise Invalid_argument if the image carries another
          backend's tag. *)
  hw : hw;
}

val name : t -> string

val checked_fetch :
  Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  image:Sofia_transform.Image.t ->
  target:int ->
  prev_pc:int ->
  Sofia_cpu.Sofia_runner.fetch_outcome
(** Tag-checked fetch used by the registered backends' [fetch]
    fields. *)
