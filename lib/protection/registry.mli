(** The protection-backend registry.

    SOFIA (re-registered over the previously hard-wired pipeline) and
    SCFP are installed at module initialisation; {!find} is therefore
    total over {!Sofia_transform.Backend_id}. {!register} replaces by
    id, so an experiment can swap in a variant implementation without
    touching the dispatch sites. *)

val register : Backend.t -> unit

val all : unit -> Backend.t list
(** Registered backends in {!Sofia_transform.Backend_id.tag} order. *)

val find : Sofia_transform.Backend_id.t -> Backend.t

val of_name : string -> Backend.t option

val sofia : Backend.t
val scfp : Backend.t
