(* The first-class protection-backend interface.

   Until PR 8 the SOFIA pipeline was hard-wired through the stack:
   transform, verifier, frontends and tooling all assumed CTR + CBC-MAC
   blocks. This record abstracts the four capabilities every backend
   must provide — protect a program into an image, independently verify
   an image, deliver a per-edge fetch verdict, and model its hardware
   cost — so the service, CLI and campaign layers can be written once
   against the interface and dispatched by {!Sofia_transform.Backend_id}.

   The execution engines themselves dispatch on the image's backend tag
   inside [Sofia_cpu.Sofia_runner] (the per-edge memo and the compiled
   cache sit below this interface), so a backend's [fetch] is the same
   pipeline the simulator runs — not a re-implementation. *)

module Backend_id = Sofia_transform.Backend_id
module Image = Sofia_transform.Image
module Layout = Sofia_transform.Layout
module Verify = Sofia_transform.Verify
module Keys = Sofia_crypto.Keys
module Program = Sofia_asm.Program

type hw = {
  synthesize : unit -> Sofia_hwmodel.Hwmodel.synthesis;
  area_overhead_pct : unit -> float;
  clock_ratio : unit -> float;
}

type t = {
  id : Backend_id.t;
  describe : string;  (** one-line scheme summary for tooling output *)
  protect :
    ?domains:int -> keys:Keys.t -> nonce:int -> Program.t -> (Image.t, Layout.error) result;
  verify : ?domains:int -> keys:Keys.t -> Image.t -> Verify.issue list;
  verify_against_source :
    ?domains:int -> keys:Keys.t -> Program.t -> Image.t -> Verify.issue list;
  fetch :
    keys:Keys.t -> image:Image.t -> target:int -> prev_pc:int ->
    Sofia_cpu.Sofia_runner.fetch_outcome;
  hw : hw;
}

let name b = Backend_id.name b.id

(* the per-edge verdict: the image must carry this backend's tag —
   a mixed-up call would silently run the wrong pipeline *)
let checked_fetch id ~keys ~(image : Image.t) ~target ~prev_pc =
  if image.Image.backend <> id then
    invalid_arg
      (Printf.sprintf "Backend.fetch: image is %s, backend is %s"
         (Backend_id.name image.Image.backend) (Backend_id.name id));
  Sofia_cpu.Sofia_runner.fetch_block ~keys ~image ~target ~prev_pc
