(* The sealed on-disk container for every persistent-store entry.

   A cached artifact crosses a trust boundary the in-memory store never
   had: the bytes sat on disk where any other process (or a crash, or a
   half-finished write) could have changed them. The envelope therefore
   carries three independent guards, checked strictly in this order on
   every load:

     1. structure  — magic, versions, kind, exact length arithmetic;
     2. integrity  — a CRC32 over the body (catches torn writes and
        media rot cheaply, before any cryptography runs);
     3. authenticity — a CBC-MAC tag under the request's k2 over the
        whole file (tag field zeroed), so an attacker without the
        device keys cannot mint or splice an envelope; and finally the
        embedded source text is compared byte-for-byte against the
        request's, closing the hash-aliasing hole that the
        content-addressed filename alone would leave open (see the
        lesson recorded on Sofia_service.Store.key).

   Any failure is a typed {!failure}, never an exception and never
   partially-decoded payload bytes: a bad envelope is a cache miss.

   Layout (all fields little-endian 32-bit words):

     0x00  magic "SFCA"
     0x04  envelope version
     0x08  kind tag (1 = protected artifact, 2 = pre-decoded table)
     0x0C  kind codec version (artifact and table codecs bump
           independently of the envelope itself)
     0x10  nonce (the request's omega)
     0x14  key fingerprint, folded to 32 bits (fast negative check;
           the tag is the load-bearing key binding)
     0x18  source length   }
     0x1C  meta length     }  body = source ++ meta ++ payload
     0x20  payload length  }
     0x24  CRC32 over the body
     0x28  tag low word    }  CBC-MAC(k2) over the whole file's words
     0x2C  tag high word   }  with this field zeroed
     0x30  body *)

open Sofia_util
module Keys = Sofia_crypto.Keys
module Cbc_mac = Sofia_crypto.Cbc_mac

type kind = Artifact | Table | Replay

(* The backend folds into the kind tag: a SOFIA artifact and an SCFP
   artifact for the same (source, keys, ω) are different objects, and
   the tag is checked before anything else is believed — a cross-
   backend read dies as [Bad_kind] (a structural miss) rather than
   handing one backend's ciphertext to the other's frontend. SOFIA
   keeps the pre-PR-8 tags 1/2, so existing stores read back
   unchanged; SCFP takes 3/4. Replay entries (the fleet router's
   persistent response cache, PR 9) take 5/7 — tag 6 is left unused so
   both backends keep the same +2 offset. The tag is also part of the
   filename identity (see Store_fs.entry_name), so the kinds never
   even share a file. *)
let kind_tag ~backend k =
  let base = match k with Artifact -> 1 | Table -> 2 | Replay -> 5 in
  match (backend : Sofia_transform.Backend_id.t) with
  | Sofia_transform.Backend_id.Sofia -> base
  | Sofia_transform.Backend_id.Scfp -> base + 2

let magic = 0x53464341 (* "SFCA" *)
let version = 1
let header_bytes = 0x30

type failure =
  | Short  (** shorter than a header *)
  | Bad_magic
  | Stale_envelope of int
  | Bad_kind
  | Stale_codec of int
  | Nonce_mismatch
  | Key_mismatch
  | Length_mismatch  (** length fields disagree with the actual size *)
  | Crc_mismatch
  | Tag_mismatch
  | Source_mismatch  (** filename-hash aliasing caught by the byte compare *)

let failure_name = function
  | Short -> "short"
  | Bad_magic -> "bad_magic"
  | Stale_envelope _ -> "stale_envelope"
  | Bad_kind -> "bad_kind"
  | Stale_codec _ -> "stale_codec"
  | Nonce_mismatch -> "nonce_mismatch"
  | Key_mismatch -> "key_mismatch"
  | Length_mismatch -> "length_mismatch"
  | Crc_mismatch -> "crc_mismatch"
  | Tag_mismatch -> "tag_mismatch"
  | Source_mismatch -> "source_mismatch"

(* Stale versions and aliasing are expected operational misses; the
   rest mean the file does not parse as what we wrote — torn, truncated
   or tampered — and feed the store's [corrupt] counter. *)
let is_corrupt = function
  | Short | Bad_magic | Bad_kind | Length_mismatch | Crc_mismatch | Tag_mismatch -> true
  | Stale_envelope _ | Stale_codec _ | Nonce_mismatch | Key_mismatch | Source_mismatch ->
    false

(* folded key identity for the fast header check: 64-bit FNV-1a of the
   printable fingerprint, halves XORed down to 32 bits *)
let fnv64 ?(basis = 0xCBF29CE484222325L) s =
  let h = ref basis in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let key_fp32 keys =
  let h = fnv64 (Keys.fingerprint keys) in
  Int64.to_int (Int64.logand (Int64.logxor h (Int64.shift_right_logical h 32)) 0xFFFF_FFFFL)

(* MAC input: the whole buffer as little-endian words, zero-padded to a
   word boundary. The tag field must already be zero when computing. *)
let words_of_bytes b =
  let len = Bytes.length b in
  Array.init ((len + 3) / 4) (fun i ->
      let w = ref 0 in
      for j = 3 downto 0 do
        let k = (4 * i) + j in
        w := (!w lsl 8) lor (if k < len then Bytes.get_uint8 b k else 0)
      done;
      !w)

let tag_of_buffer ~keys b = Cbc_mac.mac_words keys.Keys.k2 (words_of_bytes b)

let encode ?(envelope_version = version) ~backend ~kind ~codec_version ~nonce ~keys ~source
    ~meta ~payload () =
  let slen = String.length source in
  let mlen = Bytes.length meta in
  let plen = Bytes.length payload in
  let total = header_bytes + slen + mlen + plen in
  let b = Bytes.make total '\000' in
  let put off v = Bytes.blit (Word.bytes_of_word32_le v) 0 b off 4 in
  Bytes.blit_string source 0 b header_bytes slen;
  Bytes.blit meta 0 b (header_bytes + slen) mlen;
  Bytes.blit payload 0 b (header_bytes + slen + mlen) plen;
  put 0x00 magic;
  put 0x04 envelope_version;
  put 0x08 (kind_tag ~backend kind);
  put 0x0C codec_version;
  put 0x10 nonce;
  put 0x14 (key_fp32 keys);
  put 0x18 slen;
  put 0x1C mlen;
  put 0x20 plen;
  put 0x24 (Sofia_transform.Binary_format.crc32 b ~off:header_bytes ~len:(total - header_bytes));
  (* the tag goes in last, computed with its own field still zero *)
  let m1, m2 = Cbc_mac.split_tag (tag_of_buffer ~keys b) in
  put 0x28 m1;
  put 0x2C m2;
  b

type ok = { meta : Bytes.t; payload : Bytes.t }

let decode ~backend ~kind ~codec_version ~nonce ~keys ~source b =
  let len = Bytes.length b in
  if len < header_bytes then Error Short
  else begin
    let get off = Word.word32_of_bytes_le b off in
    if get 0x00 <> magic then Error Bad_magic
    else if get 0x04 <> version then Error (Stale_envelope (get 0x04))
    else if get 0x08 <> kind_tag ~backend kind then Error Bad_kind
    else if get 0x0C <> codec_version then Error (Stale_codec (get 0x0C))
    else if get 0x10 <> nonce then Error Nonce_mismatch
    else if get 0x14 <> key_fp32 keys then Error Key_mismatch
    else begin
      let slen = get 0x18 and mlen = get 0x1C and plen = get 0x20 in
      (* exact-size arithmetic: a truncated OR padded file both fail
         here, so an oversized body can never smuggle extra bytes past
         the checks below *)
      if header_bytes + slen + mlen + plen <> len then Error Length_mismatch
      else if
        Sofia_transform.Binary_format.crc32 b ~off:header_bytes ~len:(len - header_bytes)
        <> get 0x24
      then Error Crc_mismatch
      else begin
        let stored = Cbc_mac.join_tag (get 0x28) (get 0x2C) in
        let zeroed = Bytes.copy b in
        Bytes.fill zeroed 0x28 8 '\000';
        if not (Int64.equal (tag_of_buffer ~keys zeroed) stored) then Error Tag_mismatch
        else if not (String.equal (Bytes.sub_string b header_bytes slen) source) then
          Error Source_mismatch
        else
          Ok
            {
              meta = Bytes.sub b (header_bytes + slen) mlen;
              payload = Bytes.sub b (header_bytes + slen + mlen) plen;
            }
      end
    end
  end
