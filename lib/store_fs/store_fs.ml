(* The persistent content-addressed tier under Sofia_service.Store.

   One directory, one file per cached object. The filename is derived
   from two *independent* 64-bit FNV-1a hashes of the full addressing
   tuple (source ‖ key fingerprint ‖ ω ‖ kind ‖ codec version) — cheap
   routing only, never trusted: the envelope inside repeats the whole
   identity and {!Envelope.decode} byte-compares the embedded source,
   so a filename collision degrades to a miss, not to wrong bytes.

   Crash safety is the classic tmp → fsync → atomic-rename protocol:
   a write either lands whole or leaves a [.tmp] the next {!open_store}
   janitors away; a concurrent writer racing on the same key loses
   nothing because both renames install a valid envelope. Reads are
   zero-trust (see {!Envelope}); on top of the envelope, artifact loads
   re-derive the ciphertext CBC-MAC before anything is handed back
   (DESIGN §12) — the MAC-gating invariant survives serialisation
   because the verdict is recomputed, not believed.

   GC is LRU by mtime: a hit touches the file's timestamps, and after
   every write the store deletes oldest-first until the byte budget is
   met (0 = unlimited). Deleting under a reader is safe — the reader
   already holds the bytes or takes a miss. *)

open Sofia_util
module Keys = Sofia_crypto.Keys
module Cbc_mac = Sofia_crypto.Cbc_mac
module Binary_format = Sofia_transform.Binary_format
module Image = Sofia_transform.Image
module Json = Sofia_obs.Json
module Event = Sofia_obs.Event
module Obs = Sofia_obs.Obs

type t = {
  dir : string;
  budget : int;  (** bytes; 0 = unlimited *)
  m : Mutex.t;  (** guards the counters and GC sweeps *)
  obs : Obs.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable writes : int;
  mutable write_errors : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* 64-bit FNV-1a over raw bytes — binds a table file to the exact
   artifact bytes it was decoded from (artifact refreshed → stale
   tables miss instead of resurrecting an older image's edges). *)
let fingerprint64 b =
  let h = ref 0xCBF29CE484222325L in
  Bytes.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    b;
  !h

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let entry_suffix = ".sfc"
let is_entry name = Filename.check_suffix name entry_suffix
let is_tmp name = Filename.check_suffix name ".tmp"

(* Remove write debris from a previous process killed mid-write. Only
   [.tmp] files are debris by construction: a completed write has been
   renamed away, an interrupted one never got its envelope installed. *)
let janitor dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if is_tmp name then try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      names

let open_store ?(obs = Obs.none) ~dir ?(budget_bytes = 0) () =
  mkdir_p dir;
  janitor dir;
  {
    dir;
    budget = budget_bytes;
    m = Mutex.create ();
    obs;
    hits = 0;
    misses = 0;
    evictions = 0;
    corrupt = 0;
    writes = 0;
    write_errors = 0;
  }

(* Two independent hashes of the same identity string: 128 filename
   bits, so accidental collisions are out of the picture and even a
   deliberate FNV collision only costs a Source_mismatch miss. *)
(* The backend reaches the identity string through the kind tag
   (Envelope.kind_tag folds it in), so two backends' entries for the
   same source can never share a filename — and even a forced filename
   collision dies on the envelope's own kind check. *)
let entry_name ~backend ~kind ~codec_version ~nonce ~keys ~source =
  let tag = Envelope.kind_tag ~backend kind in
  let id =
    String.concat "\x00"
      [
        source;
        Keys.fingerprint keys;
        string_of_int nonce;
        string_of_int tag;
        string_of_int codec_version;
      ]
  in
  let h1 = Envelope.fnv64 id in
  let h2 = Envelope.fnv64 ~basis:0x84222325CBF29CE4L id in
  Printf.sprintf "%016Lx%016Lx.k%d%s" h1 h2 tag entry_suffix

let path t ~backend ~kind ~codec_version ~nonce ~keys ~source =
  Filename.concat t.dir (entry_name ~backend ~kind ~codec_version ~nonce ~keys ~source)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some (Bytes.unsafe_of_string s)
        | exception (Sys_error _ | End_of_file) -> None)

let get t ~backend ~kind ~codec_version ~nonce ~keys ~source =
  let p = path t ~backend ~kind ~codec_version ~nonce ~keys ~source in
  match read_file p with
  | None ->
    locked t (fun () -> t.misses <- t.misses + 1);
    None
  | Some b -> (
    match Envelope.decode ~backend ~kind ~codec_version ~nonce ~keys ~source b with
    | Error f ->
      locked t (fun () ->
          t.misses <- t.misses + 1;
          if Envelope.is_corrupt f then t.corrupt <- t.corrupt + 1);
      if Envelope.is_corrupt f && Obs.tracing t.obs then
        Obs.emit t.obs
          (Event.Service_error
             { kind = "store_fs_corrupt"; detail = Envelope.failure_name f });
      None
    | Ok ok ->
      locked t (fun () -> t.hits <- t.hits + 1);
      (* LRU touch; best-effort, a read-only store still serves hits *)
      (try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ());
      Some ok)

(* ---- GC: delete oldest-first until the byte budget is met ---- *)

let gc_locked t =
  if t.budget > 0 then begin
    match Sys.readdir t.dir with
    | exception Sys_error _ -> ()
    | names ->
      let entries =
        Array.to_list names
        |> List.filter_map (fun name ->
               if not (is_entry name) then None
               else
                 let p = Filename.concat t.dir name in
                 match Unix.stat p with
                 | st -> Some (p, st.Unix.st_size, st.Unix.st_mtime)
                 | exception Unix.Unix_error _ -> None)
      in
      let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
      if total > t.budget then begin
        let oldest_first =
          List.sort (fun (_, _, a) (_, _, b) -> compare (a : float) b) entries
        in
        let excess = ref (total - t.budget) in
        List.iter
          (fun (p, sz, _) ->
            if !excess > 0 then begin
              (try
                 Sys.remove p;
                 excess := !excess - sz;
                 t.evictions <- t.evictions + 1
               with Sys_error _ -> ())
            end)
          oldest_first
      end
  end

(* ---- crash-safe write: unique tmp → fsync → rename → dir fsync ---- *)

let tmp_counter = Atomic.make 0

let write_atomic path bytes =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)
  in
  match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | exception Unix.Unix_error _ -> false
  | fd ->
    let ok =
      try
        let len = Bytes.length bytes in
        let off = ref 0 in
        while !off < len do
          off := !off + Unix.write fd bytes !off (len - !off)
        done;
        Unix.fsync fd;
        Unix.close fd;
        Sys.rename tmp path;
        (* persist the rename itself; ignore filesystems without
           O_RDONLY directory fds *)
        (match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
         | dfd ->
           (try Unix.fsync dfd with Unix.Unix_error _ -> ());
           Unix.close dfd
         | exception Unix.Unix_error _ -> ());
        true
      with Unix.Unix_error _ | Sys_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Sys.remove tmp with Sys_error _ -> ());
        false
    in
    ok

let put t ~backend ~kind ~codec_version ~nonce ~keys ~source ~meta ~payload =
  let b =
    Envelope.encode ~backend ~kind ~codec_version ~nonce ~keys ~source ~meta ~payload ()
  in
  let p = path t ~backend ~kind ~codec_version ~nonce ~keys ~source in
  let ok = write_atomic p b in
  locked t (fun () ->
      if ok then begin
        t.writes <- t.writes + 1;
        gc_locked t
      end
      else t.write_errors <- t.write_errors + 1)

(* ---- the artifact codec (kind = Artifact) ----

   payload = the canonical serialised .sfi container;
   meta    = 24 bytes of derived facts worth memoising:
     0x00  expansion ratio, IEEE-754 bits (Int64 LE)
     0x08  ciphertext CBC-MAC tag (Int64 LE) — mandatory; re-derived
           against the deserialised cipher on every load
     0x10  issues + 1 (u32; 0 = not yet memoised)
     0x14  reserved (zero) *)

let artifact_codec_version = 1
let artifact_meta_bytes = 24

type artifact = {
  sfi : Bytes.t;
  image : Image.t;
  expansion : float;
  issues : int option;
  mac : string;  (** 16-hex-digit ciphertext CBC-MAC digest *)
}

let put_i64_le b off v =
  for i = 0 to 7 do
    Bytes.set_uint8 b (off + i)
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
  done

let get_i64_le b off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Bytes.get_uint8 b (off + i)))
  done;
  !v

let store_artifact t ~backend ~keys ~nonce ~source ~sfi ~expansion ~issues ~mac_tag =
  let meta = Bytes.make artifact_meta_bytes '\000' in
  put_i64_le meta 0 (Int64.bits_of_float expansion);
  put_i64_le meta 8 mac_tag;
  Bytes.blit (Word.bytes_of_word32_le (match issues with None -> 0 | Some n -> n + 1)) 0
    meta 16 4;
  put t ~backend ~kind:Envelope.Artifact ~codec_version:artifact_codec_version ~nonce ~keys
    ~source ~meta ~payload:sfi

let load_artifact t ~backend ~keys ~nonce ~source =
  match
    get t ~backend ~kind:Envelope.Artifact ~codec_version:artifact_codec_version ~nonce
      ~keys ~source
  with
  | None -> None
  | Some { Envelope.meta; payload } ->
    let corrupt () =
      locked t (fun () ->
          t.corrupt <- t.corrupt + 1;
          t.hits <- t.hits - 1;
          t.misses <- t.misses + 1);
      None
    in
    if Bytes.length meta <> artifact_meta_bytes then corrupt ()
    else begin
      match Binary_format.deserialize payload with
      | Error _ -> corrupt ()
      | Ok loaded ->
        let image = Binary_format.image_of_loaded loaded in
        if image.Image.nonce <> nonce || image.Image.backend <> backend then corrupt ()
        else begin
          (* The load-bearing check: the MAC verdict is *re-derived*
             over the deserialised ciphertext (plus the patch table
             under SCFP — patches decide which edges the sponge
             accepts, so they are as load-bearing as the code), never
             trusted from the file. A tampered payload wrapped in a
             fresh (attacker keyless) or stale envelope dies in
             Envelope.decode; a payload/meta splice from two valid
             envelopes dies here. *)
          let stored_tag = get_i64_le meta 8 in
          let derived =
            Cbc_mac.mac_words keys.Keys.k2 (Image.authenticated_words image)
          in
          if not (Int64.equal derived stored_tag) then corrupt ()
          else begin
            let issues =
              match Word.word32_of_bytes_le meta 16 with 0 -> None | n -> Some (n - 1)
            in
            Some
              {
                sfi = payload;
                image;
                expansion = Int64.float_of_bits (get_i64_le meta 0);
                issues;
                mac = Printf.sprintf "%016Lx" derived;
              }
          end
        end
    end

(* ---- the pre-decoded-table codec (kind = Table) ----

   payload = an opaque table blob (Sofia_cpu.Block_table bytes; this
   library stays below lib/cpu, so it never parses the blob itself);
   meta    = the 64-bit fingerprint of the artifact bytes the table was
   derived from, so a refreshed artifact invalidates its table. *)

let table_meta_bytes = 8

let store_table t ~backend ~keys ~nonce ~source ~codec_version ~artifact_fp payload =
  let meta = Bytes.make table_meta_bytes '\000' in
  put_i64_le meta 0 artifact_fp;
  put t ~backend ~kind:Envelope.Table ~codec_version ~nonce ~keys ~source ~meta ~payload

let load_table t ~backend ~keys ~nonce ~source ~codec_version ~artifact_fp =
  match get t ~backend ~kind:Envelope.Table ~codec_version ~nonce ~keys ~source with
  | None -> None
  | Some { Envelope.meta; payload } ->
    if Bytes.length meta = table_meta_bytes && Int64.equal (get_i64_le meta 0) artifact_fp
    then Some payload
    else begin
      (* stale binding: a table for some other artifact generation —
         an operational miss, not corruption *)
      locked t (fun () ->
          t.hits <- t.hits - 1;
          t.misses <- t.misses + 1);
      None
    end

(* ---- the replay codec (kind = Replay) ----

   The fleet router's persistent response cache (PR 9). The
   addressing [source] is the router's content key (operation name +
   route key), the payload is the cached response fields rendered as a
   small JSON object, and meta carries the 64-bit FNV-1a fingerprint
   of those payload bytes. The fingerprint is *re-derived* on every
   load — the zero-trust rule the artifact codec applies to its MAC:
   the envelope's CRC/tag already reject an outside tamper, and this
   inner check additionally kills a payload/meta splice of two valid
   envelopes before a stale byte is ever replayed to a client. *)

let replay_codec_version = 1
let replay_meta_bytes = 8

let store_replay t ~backend ~keys ~nonce ~source ~payload =
  let meta = Bytes.make replay_meta_bytes '\000' in
  put_i64_le meta 0 (fingerprint64 payload);
  put t ~backend ~kind:Envelope.Replay ~codec_version:replay_codec_version ~nonce ~keys
    ~source ~meta ~payload

let load_replay t ~backend ~keys ~nonce ~source =
  match
    get t ~backend ~kind:Envelope.Replay ~codec_version:replay_codec_version ~nonce ~keys
      ~source
  with
  | None -> None
  | Some { Envelope.meta; payload } ->
    if
      Bytes.length meta = replay_meta_bytes
      && Int64.equal (get_i64_le meta 0) (fingerprint64 payload)
    then Some payload
    else begin
      (* payload bytes disagree with their own recorded fingerprint:
         that is corruption, never an operational miss *)
      locked t (fun () ->
          t.corrupt <- t.corrupt + 1;
          t.hits <- t.hits - 1;
          t.misses <- t.misses + 1);
      None
    end

(* ---- counters ---- *)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let corrupt t = locked t (fun () -> t.corrupt)
let writes t = locked t (fun () -> t.writes)
let write_errors t = locked t (fun () -> t.write_errors)
let dir t = t.dir

let counters_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("dir", Json.Str t.dir);
          ("budget_bytes", Json.Int t.budget);
          ("hits", Json.Int t.hits);
          ("misses", Json.Int t.misses);
          ("evictions", Json.Int t.evictions);
          ("corrupt", Json.Int t.corrupt);
          ("writes", Json.Int t.writes);
          ("write_errors", Json.Int t.write_errors);
        ])
