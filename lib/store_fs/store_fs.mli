(** Persistent content-addressed artifact tier (DESIGN.md §12).

    One directory of {!Envelope}-sealed files under the in-memory
    serving store: protected [.sfi] artifacts with their memoised
    verify/MAC facts, and (versioned separately) pre-decoded block
    tables. Filenames route; envelopes decide — every load re-checks
    the full identity and, for artifacts, re-derives the ciphertext
    CBC-MAC before anything is handed back. Writes are crash-safe
    (unique tmp → fsync → atomic rename); a torn, truncated, stale or
    tampered file is a cache miss, never an error and never code.

    Thread-safe; counters and GC sweeps are mutex-protected, file I/O
    runs outside the lock (racing writers both install valid envelopes,
    last rename wins). *)

type t

val open_store : ?obs:Sofia_obs.Obs.t -> dir:string -> ?budget_bytes:int -> unit -> t
(** Creates [dir] (and parents) if needed and removes [.tmp] write
    debris left by a process killed mid-write. [budget_bytes] caps the
    directory's total entry size; 0 (default) = unlimited. [obs]
    receives a [service_error] event per corrupt entry encountered. *)

val fingerprint64 : Bytes.t -> int64
(** 64-bit FNV-1a of raw bytes — binds a table file to the exact
    artifact bytes it was derived from. *)

(* ---- raw envelope access (the tests' level) ---- *)

val get :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  kind:Envelope.kind ->
  codec_version:int ->
  nonce:int ->
  keys:Sofia_crypto.Keys.t ->
  source:string ->
  Envelope.ok option
(** Zero-trust read: missing file, failed decode — all [None]; corrupt
    envelopes additionally bump {!corrupt}. A hit touches the file's
    mtime (the GC's LRU clock). *)

val put :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  kind:Envelope.kind ->
  codec_version:int ->
  nonce:int ->
  keys:Sofia_crypto.Keys.t ->
  source:string ->
  meta:Bytes.t ->
  payload:Bytes.t ->
  unit
(** Crash-safe write, then a GC sweep if over budget. I/O failures
    count in {!write_errors} and never raise — the disk tier is an
    accelerator, not a dependency. *)

(* ---- the artifact codec ---- *)

val artifact_codec_version : int

type artifact = {
  sfi : Bytes.t;  (** canonical serialised [.sfi] container *)
  image : Sofia_transform.Image.t;  (** ciphertext-only reconstruction *)
  expansion : float;
  issues : int option;  (** memoised verifier issue count, if ever filled *)
  mac : string;  (** re-derived ciphertext CBC-MAC digest (16 hex digits) *)
}

val store_artifact :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  source:string ->
  sfi:Bytes.t ->
  expansion:float ->
  issues:int option ->
  mac_tag:int64 ->
  unit

val load_artifact :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  source:string ->
  artifact option
(** The MAC-gating boundary: beyond the envelope checks, the returned
    [mac] is {e re-derived} over the deserialised ciphertext (plus the
    patch table under SCFP) and compared against the stored tag — a
    mismatch is a corrupt miss, so no unverified bytes ever reach a
    runner. An artifact whose deserialised backend tag disagrees with
    [backend] is likewise a corrupt miss. *)

(* ---- the pre-decoded-table codec ---- *)

val store_table :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  source:string ->
  codec_version:int ->
  artifact_fp:int64 ->
  Bytes.t ->
  unit

val load_table :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  source:string ->
  codec_version:int ->
  artifact_fp:int64 ->
  Bytes.t option
(** [None] unless the stored binding fingerprint equals [artifact_fp]:
    a refreshed artifact silently invalidates its old table. *)

(* ---- the replay codec ---- *)

val replay_codec_version : int

val store_replay :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  source:string ->
  payload:Bytes.t ->
  unit
(** Persist one fleet replay-cache entry. [source] is the router's
    content key; [payload] is the cached response rendered as JSON.
    meta records the 64-bit FNV-1a fingerprint of the payload bytes. *)

val load_replay :
  t ->
  backend:Sofia_transform.Backend_id.t ->
  keys:Sofia_crypto.Keys.t ->
  nonce:int ->
  source:string ->
  Bytes.t option
(** Zero-trust reload: beyond the envelope checks, the payload's
    fingerprint is {e re-derived} and compared against the stored
    meta — a mismatch is a corrupt miss, so a spliced or stale payload
    is never replayed to a client. *)

(* ---- counters ---- *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val corrupt : t -> int
val writes : t -> int
val write_errors : t -> int
val dir : t -> string
val counters_json : t -> Sofia_obs.Json.t
