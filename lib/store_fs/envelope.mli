(** The sealed container every persistent-store entry lives in.

    Three independent guards checked in order on every load — structure
    (magic/version/kind/exact length arithmetic), integrity (CRC-32
    over the body) and authenticity (CBC-MAC under the request's k2
    over the whole file with the tag field zeroed, then a byte-for-byte
    compare of the embedded source against the request's). A failure is
    a typed {!failure}, never an exception and never partial payload
    bytes: a bad envelope is a cache miss. See the layout comment in
    [envelope.ml] and DESIGN.md §12. *)

type kind = Artifact | Table | Replay

val kind_tag : backend:Sofia_transform.Backend_id.t -> kind -> int
(** The on-disk kind tag. The protection backend is folded in (SOFIA
    artifact/table = 1/2, the pre-PR-8 values; SCFP = 3/4; fleet
    replay entries = 5/7, tag 6 unused so both backends share the +2
    offset), so a cross-backend read fails the structural check
    ([Bad_kind]) before any payload byte is believed — the
    shared-store cache-poisoning guard. *)

val version : int
val header_bytes : int

type failure =
  | Short
  | Bad_magic
  | Stale_envelope of int
  | Bad_kind
  | Stale_codec of int
  | Nonce_mismatch
  | Key_mismatch
  | Length_mismatch
  | Crc_mismatch
  | Tag_mismatch
  | Source_mismatch

val failure_name : failure -> string

val is_corrupt : failure -> bool
(** [true] for failures that mean the file does not parse as anything
    we ever wrote (torn, truncated, tampered); [false] for expected
    operational misses (stale versions, aliasing). *)

val fnv64 : ?basis:int64 -> string -> int64
(** 64-bit FNV-1a; exposed for the store's filename derivation. *)

val key_fp32 : Sofia_crypto.Keys.t -> int

val encode :
  ?envelope_version:int ->
  backend:Sofia_transform.Backend_id.t ->
  kind:kind ->
  codec_version:int ->
  nonce:int ->
  keys:Sofia_crypto.Keys.t ->
  source:string ->
  meta:Bytes.t ->
  payload:Bytes.t ->
  unit ->
  Bytes.t
(** [?envelope_version] exists solely so tests can mint stale-version
    envelopes; production callers never pass it. *)

type ok = { meta : Bytes.t; payload : Bytes.t }

val decode :
  backend:Sofia_transform.Backend_id.t ->
  kind:kind ->
  codec_version:int ->
  nonce:int ->
  keys:Sofia_crypto.Keys.t ->
  source:string ->
  Bytes.t ->
  (ok, failure) result
(** Total: never raises, whatever the input bytes. *)
