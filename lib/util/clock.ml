(* Monotonic time for deadlines and watchdogs; wall time only for
   reported timestamps. OCaml 5.1's Unix has no clock_gettime, so the
   monotonic source is bechamel's CLOCK_MONOTONIC stub (already a repo
   dependency through the bench harness). *)

let mono_ns () = Monotonic_clock.now ()

let mono_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let mono_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

let wall_s () = Unix.gettimeofday ()
