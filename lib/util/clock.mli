(** Time sources, split by purpose.

    Durations, deadlines and watchdog timeouts must come from the
    {e monotonic} clock: a wall-clock step (NTP slew, manual reset,
    leap adjustment) would otherwise instantly expire — or immortalize
    — every pending deadline. Wall time is only ever for {e reported}
    timestamps (log lines, response metadata).

    The monotonic source is [CLOCK_MONOTONIC] via bechamel's stub
    (OCaml 5.1's [Unix] does not expose [clock_gettime]). *)

val mono_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary epoch. *)

val mono_s : unit -> float
(** Monotonic seconds since an arbitrary epoch. Use only for
    differences, never as a timestamp. *)

val mono_ms : unit -> float
(** Monotonic milliseconds since an arbitrary epoch. *)

val wall_s : unit -> float
(** [Unix.gettimeofday] — reported timestamps only. *)
