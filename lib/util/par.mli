(** Deterministic fork-join parallelism over OCaml 5 domains.

    [map ~domains f a] is extensionally [Array.map f a]: elements are
    partitioned into [domains] contiguous chunks, each chunk mapped in
    its own domain, and the results concatenated in index order — so
    the output is independent of scheduling. [f] must be safe to call
    concurrently with itself (no shared mutable state); element order
    {e within} a chunk is preserved and [f] is called exactly once per
    element.

    [domains <= 1] (the default) degrades to a plain sequential
    [Array.map] with no domain spawned. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

val recommended : unit -> int
(** Domains worth using for compute-bound fan-out on this machine:
    [Domain.recommended_domain_count () - 1] (the caller's domain works
    too), at least 1. *)
