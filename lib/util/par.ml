let recommended () = max 1 (Domain.recommended_domain_count () - 1)

let map ?(domains = 1) f a =
  let n = Array.length a in
  let d = max 1 (min domains n) in
  if d = 1 then Array.map f a
  else begin
    (* contiguous chunks, chunk i = [lo i, lo (i+1)); the caller's
       domain takes chunk 0 while d-1 spawned domains take the rest, and
       chunks are re-concatenated in index order — the result is the
       same array [Array.map f a] builds, whatever the schedule *)
    let lo i = i * n / d in
    let worker i () = Array.init (lo (i + 1) - lo i) (fun j -> f a.(lo i + j)) in
    let spawned = Array.init (d - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    let first = worker 0 () in
    let chunks = first :: Array.to_list (Array.map Domain.join spawned) in
    Array.concat chunks
  end
