(** Structured events of the SOFIA frontend/backend pipeline.

    One event per architecturally meaningful step of the
    fetch → decrypt → MAC-verify → execute → reset path (paper
    Figs. 1–6), designed so a trace of a detected attack reads as the
    pipeline's own story: the fetch of the tampered edge, the failing
    MAC verification, the violation, and the reset.

    Events carry plain integers (addresses, counts) so this library
    stays a leaf: the CPU, crypto and transform layers depend on it,
    never the other way around. Violation kinds are the stable strings
    produced by [Sofia_cpu.Machine.violation_label]. *)

type mac_kind = Exec_mac | Mux_mac

type t =
  | Block_fetch of { target : int; prev_pc : int }
      (** the frontend starts fetching the block entered at [target]
          along the control-flow edge from [prev_pc] *)
  | Memo_hit of { target : int; prev_pc : int }
      (** the simulator's decrypt memo already holds this edge
          (hardware would re-decrypt; see {!Sofia_cpu.Sofia_runner}) *)
  | Memo_miss of { target : int; prev_pc : int }
  | Edge_decrypt of { target : int; prev_pc : int; words : int }
      (** [words] CTR keystream words were generated for this edge *)
  | Mac_verify of { block_base : int; kind : mac_kind; ok : bool }
  | Mux_select of { block_base : int; path : int }
      (** a multiplexor block entry chose control-flow path 1 or 2 *)
  | Block_enter of { base : int; icache_hit : bool }
      (** a verified block starts executing *)
  | Retire of { pc : int }
  | Violation of { kind : string; address : int }
  | Reset of { kind : string; address : int }
      (** the reset line fired (every [Violation] is followed by one) *)
  | Halt of { code : int }
  | Fuel_exhausted
  | Service_error of { kind : string; detail : string }
      (** the serving layer rejected bad input instead of crashing: a
          malformed JSON request, an unloadable [.sfi] image, a job
          whose executor raised — [kind] is a stable snake_case tag
          ([bad_request], [bad_image], [job_failed]) *)
  | Custom of { name : string; value : int }
      (** escape hatch for tools layered on top (verifier, bench) *)

val name : t -> string
(** Stable snake_case tag, also the JSONL ["ev"] field. *)

val to_json : ?seq:int -> t -> Json.t

val to_jsonl : ?seq:int -> t -> string
(** One JSON object per event, e.g.
    [{"seq":17,"ev":"mac_verify","base":64,"kind":"exec","ok":false}]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable single line (used by [examples/attack_demo]). *)
