(** Ring-buffered structured event trace.

    A fixed-capacity ring: emission is O(1), never allocates, never
    grows, so tracing a multi-hundred-million-instruction run retains
    the {e last} [capacity] events — exactly the window that matters
    when the question is "what led up to this reset?". The global
    emission index ([seq] in the JSONL output) survives wrap-around, so
    a consumer can tell how much history was dropped. *)

type t

val default_capacity : int
(** 4096 events. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val emit : t -> Event.t -> unit

val total : t -> int
(** Events ever emitted (including overwritten ones). *)

val length : t -> int
(** Events currently retained ([min total capacity]). *)

val dropped : t -> int
(** [total - length]: events lost to wrap-around. *)

val clear : t -> unit

val iteri : t -> (int -> Event.t -> unit) -> unit
(** Oldest retained first; the [int] is the global emission index. *)

val to_list : t -> Event.t list

val write_jsonl : t -> out_channel -> unit
(** One JSON object per line, oldest retained first, each carrying its
    global [seq]. *)

val save_jsonl : t -> path:string -> unit

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one line per event. *)
