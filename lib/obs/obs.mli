(** The observability handle threaded through the simulators.

    A pair of optional sinks. [none] (the default everywhere) is the
    no-op handle: every hook site reduces to a pattern match on an
    immediate [None] — no closure, no event construction, no
    allocation — so instrumentation is free when disabled. Hot paths
    must guard event {e construction} behind {!tracing}:

    {[
      if Obs.tracing obs then Obs.emit obs (Event.Retire { pc })
    ]} *)

type t = { trace : Trace.t option; metrics : Metrics.t option }

val none : t
(** Both sinks absent; the default for every [?obs] parameter. *)

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t

val tracing : t -> bool

val live : t -> bool
(** Either sink present. *)

val emit : t -> Event.t -> unit
(** Emit to the trace sink if present. Call only behind a {!tracing}
    guard when the event payload would otherwise allocate. *)
