type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let output oc v = output_string oc (to_string v)

(* Recursive-descent parser for the same subset [write] emits. Numbers
   parse as [Int] when they are syntactically integral and fit, [Float]
   otherwise; "\uXXXX" escapes outside ASCII are kept verbatim (the
   emitter never produces them for the data this repo round-trips). *)
exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
         advance ());
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let integral = ref true in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' -> true
          | '.' | 'e' | 'E' | '+' | '-' ->
            integral := false;
            true
          | _ -> false)
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "malformed number";
    if !integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  v

let parse_opt s = match parse s with v -> Some v | exception Parse_error _ -> None

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
