type t = { trace : Trace.t option; metrics : Metrics.t option }

let none = { trace = None; metrics = None }

let create ?trace ?metrics () = { trace; metrics }

let tracing t = match t.trace with Some _ -> true | None -> false
let live t = match t with { trace = None; metrics = None } -> false | _ -> true

let emit t ev = match t.trace with Some tr -> Trace.emit tr ev | None -> ()
