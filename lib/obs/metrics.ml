type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;  (* bucket i counts values with 2^i <= v < 2^(i+1); bucket 0 also holds v <= 1 *)
}

let hist_create () =
  { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int; buckets = Array.make 31 0 }

let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 1 do
      incr b;
      x := !x lsr 1
    done;
    min !b 30
  end

let hist_observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_mean h = if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count

let hist_reset h =
  h.h_count <- 0;
  h.h_sum <- 0;
  h.h_min <- max_int;
  h.h_max <- min_int;
  Array.fill h.buckets 0 (Array.length h.buckets) 0

let hist_to_json h =
  let nonzero = ref [] in
  Array.iteri (fun i c -> if c > 0 then nonzero := (string_of_int i, Json.Int c) :: !nonzero) h.buckets;
  Json.Obj
    [ ("count", Json.Int h.h_count); ("sum", Json.Int h.h_sum);
      ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
      ("max", Json.Int (if h.h_count = 0 then 0 else h.h_max));
      ("mean", Json.Float (hist_mean h)); ("log2_buckets", Json.Obj (List.rev !nonzero)) ]

type t = {
  mutable block_fetches : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable words_decrypted : int;
  mutable mac_verifies : int;
  mutable mac_failures : int;
  mutable mux_path1 : int;
  mutable mux_path2 : int;
  mutable blocks_entered : int;
  mutable retires : int;
  mutable violations : int;
  mutable resets : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable ks_cache_hits : int;
  mutable ks_cache_misses : int;
  mutable ks_cache_evictions : int;
  mutable engine_hits : int;
  mutable engine_misses : int;
  mutable engine_invalidations : int;
  mutable verify_checks : int;
  mutable verify_issues : int;
  block_cycles : histogram;
}

let create () =
  {
    block_fetches = 0;
    memo_hits = 0;
    memo_misses = 0;
    words_decrypted = 0;
    mac_verifies = 0;
    mac_failures = 0;
    mux_path1 = 0;
    mux_path2 = 0;
    blocks_entered = 0;
    retires = 0;
    violations = 0;
    resets = 0;
    icache_hits = 0;
    icache_misses = 0;
    ks_cache_hits = 0;
    ks_cache_misses = 0;
    ks_cache_evictions = 0;
    engine_hits = 0;
    engine_misses = 0;
    engine_invalidations = 0;
    verify_checks = 0;
    verify_issues = 0;
    block_cycles = hist_create ();
  }

let reset t =
  t.block_fetches <- 0;
  t.memo_hits <- 0;
  t.memo_misses <- 0;
  t.words_decrypted <- 0;
  t.mac_verifies <- 0;
  t.mac_failures <- 0;
  t.mux_path1 <- 0;
  t.mux_path2 <- 0;
  t.blocks_entered <- 0;
  t.retires <- 0;
  t.violations <- 0;
  t.resets <- 0;
  t.icache_hits <- 0;
  t.icache_misses <- 0;
  t.ks_cache_hits <- 0;
  t.ks_cache_misses <- 0;
  t.ks_cache_evictions <- 0;
  t.engine_hits <- 0;
  t.engine_misses <- 0;
  t.engine_invalidations <- 0;
  t.verify_checks <- 0;
  t.verify_issues <- 0;
  hist_reset t.block_cycles

let counters t =
  [
    ("block_fetches", t.block_fetches);
    ("memo_hits", t.memo_hits);
    ("memo_misses", t.memo_misses);
    ("words_decrypted", t.words_decrypted);
    ("mac_verifies", t.mac_verifies);
    ("mac_failures", t.mac_failures);
    ("mux_path1", t.mux_path1);
    ("mux_path2", t.mux_path2);
    ("blocks_entered", t.blocks_entered);
    ("retires", t.retires);
    ("violations", t.violations);
    ("resets", t.resets);
    ("icache_hits", t.icache_hits);
    ("icache_misses", t.icache_misses);
    ("ks_cache_hits", t.ks_cache_hits);
    ("ks_cache_misses", t.ks_cache_misses);
    ("ks_cache_evictions", t.ks_cache_evictions);
    ("engine_hits", t.engine_hits);
    ("engine_misses", t.engine_misses);
    ("engine_invalidations", t.engine_invalidations);
    ("verify_checks", t.verify_checks);
    ("verify_issues", t.verify_issues);
  ]

let to_json t =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)
    @ [ ("block_cycles", hist_to_json t.block_cycles) ])

let pp fmt t =
  List.iter (fun (k, v) -> if v <> 0 then Format.fprintf fmt "%-18s %12d@." k v) (counters t);
  if t.block_cycles.h_count > 0 then
    Format.fprintf fmt "%-18s count %d mean %.1f min %d max %d@." "block_cycles"
      t.block_cycles.h_count (hist_mean t.block_cycles) t.block_cycles.h_min t.block_cycles.h_max
