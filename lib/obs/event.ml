type mac_kind = Exec_mac | Mux_mac

type t =
  | Block_fetch of { target : int; prev_pc : int }
  | Memo_hit of { target : int; prev_pc : int }
  | Memo_miss of { target : int; prev_pc : int }
  | Edge_decrypt of { target : int; prev_pc : int; words : int }
  | Mac_verify of { block_base : int; kind : mac_kind; ok : bool }
  | Mux_select of { block_base : int; path : int }
  | Block_enter of { base : int; icache_hit : bool }
  | Retire of { pc : int }
  | Violation of { kind : string; address : int }
  | Reset of { kind : string; address : int }
  | Halt of { code : int }
  | Fuel_exhausted
  | Service_error of { kind : string; detail : string }
  | Custom of { name : string; value : int }

let name = function
  | Block_fetch _ -> "block_fetch"
  | Memo_hit _ -> "memo_hit"
  | Memo_miss _ -> "memo_miss"
  | Edge_decrypt _ -> "edge_decrypt"
  | Mac_verify _ -> "mac_verify"
  | Mux_select _ -> "mux_select"
  | Block_enter _ -> "block_enter"
  | Retire _ -> "retire"
  | Violation _ -> "violation"
  | Reset _ -> "reset"
  | Halt _ -> "halt"
  | Fuel_exhausted -> "fuel_exhausted"
  | Service_error _ -> "service_error"
  | Custom _ -> "custom"

let mac_kind_name = function Exec_mac -> "exec" | Mux_mac -> "mux"

let fields = function
  | Block_fetch { target; prev_pc } | Memo_hit { target; prev_pc } | Memo_miss { target; prev_pc }
    -> [ ("target", Json.Int target); ("prev_pc", Json.Int prev_pc) ]
  | Edge_decrypt { target; prev_pc; words } ->
    [ ("target", Json.Int target); ("prev_pc", Json.Int prev_pc); ("words", Json.Int words) ]
  | Mac_verify { block_base; kind; ok } ->
    [ ("base", Json.Int block_base); ("kind", Json.Str (mac_kind_name kind));
      ("ok", Json.Bool ok) ]
  | Mux_select { block_base; path } ->
    [ ("base", Json.Int block_base); ("path", Json.Int path) ]
  | Block_enter { base; icache_hit } ->
    [ ("base", Json.Int base); ("icache_hit", Json.Bool icache_hit) ]
  | Retire { pc } -> [ ("pc", Json.Int pc) ]
  | Violation { kind; address } | Reset { kind; address } ->
    [ ("kind", Json.Str kind); ("address", Json.Int address) ]
  | Halt { code } -> [ ("code", Json.Int code) ]
  | Fuel_exhausted -> []
  | Service_error { kind; detail } ->
    [ ("kind", Json.Str kind); ("detail", Json.Str detail) ]
  | Custom { name; value } -> [ ("name", Json.Str name); ("value", Json.Int value) ]

let to_json ?seq t =
  Json.Obj
    ((match seq with Some n -> [ ("seq", Json.Int n) ] | None -> [])
    @ (("ev", Json.Str (name t)) :: fields t))

let to_jsonl ?seq t = Json.to_string (to_json ?seq t)

let pp fmt t =
  match t with
  | Block_fetch { target; prev_pc } ->
    Format.fprintf fmt "block-fetch    target=0x%08x prevPC=0x%08x" target prev_pc
  | Memo_hit { target; prev_pc } ->
    Format.fprintf fmt "memo-hit       target=0x%08x prevPC=0x%08x" target prev_pc
  | Memo_miss { target; prev_pc } ->
    Format.fprintf fmt "memo-miss      target=0x%08x prevPC=0x%08x" target prev_pc
  | Edge_decrypt { target; prev_pc; words } ->
    Format.fprintf fmt "edge-decrypt   target=0x%08x prevPC=0x%08x words=%d" target prev_pc words
  | Mac_verify { block_base; kind; ok } ->
    Format.fprintf fmt "mac-verify     base=0x%08x kind=%s %s" block_base (mac_kind_name kind)
      (if ok then "PASS" else "FAIL")
  | Mux_select { block_base; path } ->
    Format.fprintf fmt "mux-select     base=0x%08x path=%d" block_base path
  | Block_enter { base; icache_hit } ->
    Format.fprintf fmt "block-enter    base=0x%08x icache=%s" base
      (if icache_hit then "hit" else "miss")
  | Retire { pc } -> Format.fprintf fmt "retire         pc=0x%08x" pc
  | Violation { kind; address } ->
    Format.fprintf fmt "VIOLATION      kind=%s address=0x%08x" kind address
  | Reset { kind; address } ->
    Format.fprintf fmt "CPU-RESET      kind=%s address=0x%08x" kind address
  | Halt { code } -> Format.fprintf fmt "halt           code=%d" code
  | Fuel_exhausted -> Format.fprintf fmt "fuel-exhausted"
  | Service_error { kind; detail } ->
    Format.fprintf fmt "SERVICE-ERROR  kind=%s detail=%s" kind detail
  | Custom { name; value } -> Format.fprintf fmt "custom         %s=%d" name value
