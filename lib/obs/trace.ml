type t = {
  buf : Event.t array;
  capacity : int;
  mutable next : int;  (* write cursor into [buf] *)
  mutable total : int;  (* events ever emitted *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity Event.Fuel_exhausted; capacity; next = 0; total = 0 }

let capacity t = t.capacity

let emit t ev =
  t.buf.(t.next) <- ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let total t = t.total
let length t = min t.total t.capacity
let dropped t = t.total - length t

let clear t =
  t.next <- 0;
  t.total <- 0

(* oldest retained event first; [f seq ev] with [seq] the global
   0-based emission index *)
let iteri t f =
  let n = length t in
  let first_seq = t.total - n in
  let start = if t.total <= t.capacity then 0 else t.next in
  for i = 0 to n - 1 do
    f (first_seq + i) t.buf.((start + i) mod t.capacity)
  done

let to_list t =
  let acc = ref [] in
  iteri t (fun _ ev -> acc := ev :: !acc);
  List.rev !acc

let write_jsonl t oc =
  iteri t (fun seq ev ->
    output_string oc (Event.to_jsonl ~seq ev);
    output_char oc '\n')

let save_jsonl t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write_jsonl t oc)

let pp fmt t =
  iteri t (fun seq ev -> Format.fprintf fmt "%6d  %a@." seq Event.pp ev)
