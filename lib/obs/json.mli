(** Minimal dependency-free JSON builder/reader for the observability
    sinks (event lines, metrics snapshots, benchmark reports) and the
    tools that consume them (e.g. [tools/bench_compare], which diffs a
    fresh bench report against the committed baseline). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialise as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation with full string escaping. *)

val output : out_channel -> t -> unit

exception Parse_error of string

val parse : string -> t
(** Parse one complete JSON value (the subset {!to_string} emits; any
    standard JSON number/string also parses — integral numbers that fit
    an [int] load as [Int], everything else as [Float]).
    @raise Parse_error on malformed input or trailing characters. *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key], if any;
    [None] on non-objects. *)
