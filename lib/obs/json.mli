(** Minimal dependency-free JSON builder for the observability sinks
    (event lines, metrics snapshots, benchmark reports). Emission only
    — the repo never needs to parse JSON, so there is no reader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialise as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation with full string escaping. *)

val output : out_channel -> t -> unit
