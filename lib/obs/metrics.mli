(** Monotonic counters and histograms for the SOFIA pipeline.

    The counter set mirrors the per-stage event counts that
    encryption-based CFI evaluations report (decryptions performed,
    MACs checked, faults detected): one mutable record, fields bumped
    directly on the hot path — no hashing, no boxing, no allocation.
    The record is deliberately concrete so the runners can write
    [m.retires <- m.retires + 1]. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;
      (** log2 buckets: index [i] counts values in [[2^i, 2^(i+1))];
          index 0 also absorbs values [<= 1], index 30 is a catch-all *)
}

val hist_create : unit -> histogram
val hist_observe : histogram -> int -> unit
val hist_mean : histogram -> float
val hist_reset : histogram -> unit
val hist_to_json : histogram -> Json.t

type t = {
  mutable block_fetches : int;  (** frontend fetch requests (pre-memo) *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable words_decrypted : int;  (** CTR keystream words generated *)
  mutable mac_verifies : int;
  mutable mac_failures : int;
  mutable mux_path1 : int;
  mutable mux_path2 : int;
  mutable blocks_entered : int;  (** verified blocks that began executing *)
  mutable retires : int;
  mutable violations : int;
  mutable resets : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable ks_cache_hits : int;  (** per-edge keystream cache (when enabled) *)
  mutable ks_cache_misses : int;
  mutable ks_cache_evictions : int;
  mutable engine_hits : int;
      (** fast engine: verified-block visits served from the
          pre-decoded cache *)
  mutable engine_misses : int;  (** fast engine: block compilations *)
  mutable engine_invalidations : int;
      (** fast engine: pre-decoded cache flushes (violation/reset) *)
  mutable verify_checks : int;  (** offline image-verifier block checks *)
  mutable verify_issues : int;
  block_cycles : histogram;  (** cycle cost per executed block visit *)
}

val create : unit -> t

val reset : t -> unit

val counters : t -> (string * int) list
(** All scalar counters, in declaration order, with stable names (the
    JSON field names). *)

val to_json : t -> Json.t
(** Counters plus the histogram summary — the ["obs"] object of
    [BENCH_*.json] files. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table of the non-zero counters. *)
