(* Attack demo: the paper's motivating scenario — a vulnerable
   safety-critical controller attacked with code reuse (ROP and JOP)
   and with direct code tampering, on both processor models.

     dune exec examples/attack_demo.exe *)

module Scenario = Sofia.Attack.Scenario
module Tamper = Sofia.Attack.Tamper
module Diversion = Sofia.Attack.Diversion
module Machine = Sofia.Cpu.Machine

let keys = Sofia.Crypto.Keys.generate ~seed:0xA77AC1L

let describe (r : Machine.run_result) =
  Format.asprintf "%a, outputs = [%s]" Machine.pp_outcome r.Machine.outcome
    (String.concat "; " (List.map (Printf.sprintf "0x%x") r.Machine.outputs))

let show_scenario t =
  Format.printf "@.--- %s ---@." t.Scenario.name;
  Format.printf "benign input :  vanilla: %s@." (describe t.Scenario.clean.Scenario.vanilla);
  Format.printf "                shadow:  %s@." (describe t.Scenario.clean.Scenario.shadow);
  Format.printf "                SOFIA:   %s@." (describe t.Scenario.clean.Scenario.sofia);
  Format.printf "attack input :  vanilla: %s%s@."
    (describe t.Scenario.attacked.Scenario.vanilla)
    (if Scenario.vanilla_compromised t then "   << COMPROMISED (0xdead = brakes disabled)" else "");
  Format.printf "                shadow:  %s%s@."
    (describe t.Scenario.attacked.Scenario.shadow)
    (if Scenario.shadow_compromised t then "   << baseline CFI bypassed"
     else if Scenario.shadow_prevented t then "   << caught by the shadow stack" else "");
  Format.printf "                SOFIA:   %s%s@."
    (describe t.Scenario.attacked.Scenario.sofia)
    (if Scenario.sofia_prevented t then "   << attack stopped before any store" else "")

let () =
  Format.printf "=== SOFIA attack demo ===@.";
  Format.printf
    "A controller copies a network packet without a bounds check. The@.\
     attacker knows every address of the protected image but not the@.\
     device keys (paper's threat model).@.";

  show_scenario (Scenario.rop ~keys ());
  show_scenario (Scenario.jop ~keys ());

  (* direct code tampering campaign *)
  let program = Sofia.Asm.Assembler.assemble Scenario.rop_source in
  let image = Sofia.Transform.Transform.protect_exn ~keys ~nonce:0x21 program in
  let sofia, vanilla =
    Tamper.random_word_campaign ~keys ~program ~image ~trials:100 ~seed:1L ()
  in
  Format.printf "@.--- random code-injection campaign (100 single-word overwrites) ---@.";
  Format.printf
    "SOFIA : %d/%d detected at fetch; %d landed in code this input never runs; 0 executed@."
    sofia.Tamper.detected sofia.Tamper.trials sofia.Tamper.executed_same_output;
  Format.printf
    "vanilla: %d/%d executed tampered code then crashed; %d visibly misbehaved; %d were lucky@."
    vanilla.Tamper.detected vanilla.Tamper.trials
    vanilla.Tamper.executed_with_changed_output vanilla.Tamper.executed_same_output;

  (* control-flow diversion: SOFIA vs coarse-grained CFI *)
  let c = Diversion.random_campaign ~keys ~program ~image ~trials:300 ~seed:2L in
  Format.printf "@.--- random control-flow diversions (%d off-CFG edges) ---@." c.Diversion.trials;
  Format.printf "vanilla accepts     : %d@." c.Diversion.vanilla_accepted;
  Format.printf "coarse-grained CFI  : %d  (label-based policy: any block leader)@."
    c.Diversion.coarse_accepted;
  Format.printf "SOFIA accepts       : %d  (instruction-level edges only)@."
    c.Diversion.sofia_accepted;

  (* what the pipeline saw: flip one bit of ciphertext, trace the run.
     A small ring keeps exactly the window that led up to the reset —
     the forensic record a deployed SOFIA device would log. *)
  let module Image = Sofia.Transform.Image in
  let module Trace = Sofia.Obs.Trace in
  let addr = image.Image.text_base + 64 in
  let old = Option.get (Image.fetch image addr) in
  let tampered = Image.with_tampered_word image ~address:addr ~value:(old lxor 0x10) in
  let trace = Trace.create ~capacity:12 () in
  let obs = Sofia.Obs.Obs.create ~trace () in
  let r = Sofia.Cpu.Sofia_runner.run ~obs ~keys tampered in
  Format.printf "@.--- the violation event stream (one bit of ciphertext at 0x%08x flipped) ---@."
    addr;
  Format.printf "outcome: %a; last %d of %d pipeline events:@." Machine.pp_outcome
    r.Machine.outcome (Trace.length trace) (Trace.total trace);
  Format.printf "%a" Trace.pp trace;
  Format.printf "@.done.@."
